//! The runtime Branch Trace Unit: fetch, commit, squash, eviction, flush and
//! per-context partitioning flows (§5.3 of the paper, plus the Q4 discussion
//! of context switches between crypto applications).

use crate::cursor::TraceCursor;
use crate::element::{entry_storage_bits, ELEMENTS_PER_ENTRY};
use crate::encode::{EncodedBranchTrace, EncodedTraces};
use cassandra_trace::hints::BranchHint;
use serde::{Deserialize, Serialize};

/// Sentinel in the PC → slot table for branches without an encoded trace.
const NO_SLOT: u32 = u32::MAX;

/// Configuration of the BTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtuConfig {
    /// Number of entries in the Pattern Table / Trace Cache / Checkpoint
    /// Table (16 in the paper's Table 3).
    pub entries: usize,
    /// Extra frontend latency (cycles) when a multi-target branch misses in
    /// the Trace Cache and its trace must be fetched from the data pages.
    pub miss_penalty: u64,
    /// Number of way-partitions the Trace Cache is split into for
    /// per-context isolation (discussion Q4): `1` is the paper's
    /// unpartitioned unit, `n > 1` divides the `entries` ways across up to
    /// `n` concurrently resident crypto-application contexts, so a context
    /// switch costs a partition reassignment instead of a whole-unit flush.
    pub partitions: usize,
}

impl Default for BtuConfig {
    fn default() -> Self {
        BtuConfig {
            entries: 16,
            miss_penalty: 20,
            partitions: 1,
        }
    }
}

/// Statistics kept by the BTU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtuStats {
    /// Total fetch-time lookups.
    pub lookups: u64,
    /// Lookups that hit a resident Trace Cache entry.
    pub hits: u64,
    /// Lookups that missed and had to stream the trace in.
    pub misses: u64,
    /// Entries evicted to make room (checkpoints written back).
    pub evictions: u64,
    /// Lookups answered from the single-target hint (no BTU entry used).
    pub single_target_lookups: u64,
    /// Lookups for branches without replayable traces (fetch must stall).
    pub stall_lookups: u64,
    /// Whole-unit flushes (context switches between crypto applications, Q4).
    pub flushes: u64,
    /// Committed crypto branches.
    pub commits: u64,
    /// Squash recoveries.
    pub squashes: u64,
    /// Context switches served by activating a (possibly new) partition
    /// instead of flushing the whole unit. A switch to the already-active
    /// context and the first registration of a context are not switches;
    /// this counter agrees with the pipeline's `context_switches`.
    pub partition_switches: u64,
    /// Partition reassignments that had to steal an owned partition from
    /// another context (evicting its residents).
    pub partition_steals: u64,
}

/// Per-context slice of the BTU statistics, tracked once contexts start
/// switching (single-context runs keep this list empty). Rates are derived
/// by reports: hit rate is `hits / (hits + misses)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextBtuStats {
    /// The context id these counters belong to.
    pub context: u64,
    /// Fetch-time lookups made while this context was active.
    pub lookups: u64,
    /// Trace Cache hits while this context was active.
    pub hits: u64,
    /// Trace Cache misses while this context was active.
    pub misses: u64,
    /// Entries evicted from this context's partition (capacity pressure,
    /// steals and reassignment drains all count).
    pub evictions: u64,
    /// Counted switches onto this context.
    pub partition_switches: u64,
    /// Times this context's partition was stolen by another context.
    pub steals_suffered: u64,
    /// Exponentially-weighted estimate of this context's resident
    /// working-set size, updated each time it is switched out. This is what
    /// the scheduler-driven victim policy reads.
    pub working_set_estimate: u64,
}

impl ContextBtuStats {
    /// Trace Cache hit rate of this context (0 when it never used the
    /// cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How [`BranchTraceUnit::assign_partition`] picks a steal victim when
/// every partition is owned. Runtime-only (not part of [`BtuConfig`]): the
/// OS-scheduler model flips it per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Steal the partition furthest from the active one in round-robin
    /// order — the context that will run again last.
    #[default]
    FurthestFromActive,
    /// Steal the owned partition whose owner has the smallest observed
    /// working-set estimate (ties fall back to furthest-from-active); the
    /// scheduler-driven policy of the consolidation experiment.
    SmallestWorkingSet,
}

/// The answer of a fetch-time BTU lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtuLookup {
    /// The next PC dictated by the sequential trace, if available.
    pub next_pc: Option<usize>,
    /// True if the branch hit a resident entry (or needed none).
    pub hit: bool,
    /// True if the frontend must stall until the branch resolves (no trace).
    pub needs_stall: bool,
    /// Extra frontend latency in cycles (trace miss streaming).
    pub extra_latency: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct BranchState {
    /// Speculative fetch-side cursor.
    fetch: TraceCursor,
    /// Committed cursor (the Checkpoint Table contents).
    committed: TraceCursor,
}

/// One way-partition of the Trace Cache: the context owning it plus its
/// resident branch PCs, most recently used last.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Partition {
    owner: Option<u64>,
    resident: Vec<usize>,
}

/// One program's dense replay tables: the hint LUT, the PC → slot table and
/// the per-slot cursors/traces. A single-tenant BTU holds exactly one image
/// (the construction image); multi-tenant consolidation registers one per
/// context ([`BranchTraceUnit::register_context`]) because distinct
/// programs' branch PCs overlap.
#[derive(Debug, Clone)]
struct TraceImage {
    encoded: EncodedTraces,
    /// PC-indexed hint LUT mirroring `encoded.hints`.
    hint_of: Vec<Option<BranchHint>>,
    /// PC-indexed slot table: `NO_SLOT` for PCs without an encoded trace.
    slot_of: Vec<u32>,
    /// Per-slot replay state; conceptually the Checkpoint Table backed by
    /// the trace data pages, so it survives evictions, flushes and partition
    /// reassignments.
    slots: Vec<BranchState>,
    /// Per-slot encoded trace, cloned out of `encoded` in slot order so a
    /// lookup advances its cursor without touching the trace map.
    slot_traces: Vec<EncodedBranchTrace>,
}

impl TraceImage {
    fn new(encoded: EncodedTraces) -> Self {
        let table_len = encoded
            .hints
            .hints
            .keys()
            .chain(encoded.traces.keys())
            .max()
            .map_or(0, |&max_pc| max_pc + 1);
        let mut hint_of = vec![None; table_len];
        for (&pc, &hint) in &encoded.hints.hints {
            hint_of[pc] = Some(hint);
        }
        let mut slot_of = vec![NO_SLOT; table_len];
        let mut slots = Vec::with_capacity(encoded.traces.len());
        let mut slot_traces = Vec::with_capacity(encoded.traces.len());
        for (&pc, trace) in &encoded.traces {
            slot_of[pc] = slots.len() as u32;
            slots.push(BranchState {
                fetch: TraceCursor::new(),
                committed: TraceCursor::new(),
            });
            slot_traces.push(trace.clone());
        }
        TraceImage {
            encoded,
            hint_of,
            slot_of,
            slots,
            slot_traces,
        }
    }
}

/// The Branch Trace Unit.
///
/// Per-branch structures are slot-indexed dense tables built once at
/// construction rather than tree maps: branch PCs are small instruction
/// indices, so a PC-indexed LUT answers the hint in O(1), and each
/// multi-target branch gets a slot holding its replay cursors next to a
/// clone of its encoded trace. Fetch, commit and the squash scan touch only
/// these flat arrays — the hot per-branch path does no tree walks.
#[derive(Debug, Clone)]
pub struct BranchTraceUnit {
    config: BtuConfig,
    /// Per-program replay tables; index 0 is the construction image, which
    /// serves every context without a registered image of its own (the
    /// single-tenant case).
    images: Vec<TraceImage>,
    /// Context → image index (linear scan; tenant counts are tiny).
    context_images: Vec<(u64, usize)>,
    /// Cached image index of the active context, so the hot lookup path
    /// pays one indirection and no scan.
    active_image: usize,
    /// The context fetch is serving, once any context has registered via
    /// [`BranchTraceUnit::switch_context`]. `None` is the single-tenant
    /// state: no per-context attribution happens.
    active_context: Option<u64>,
    /// Steal-victim selection for oversubscribed partitions.
    victim_policy: VictimPolicy,
    /// The Trace Cache residency, split into way-partitions (a single
    /// partition models the paper's unpartitioned unit).
    partitions: Vec<Partition>,
    /// Index of the partition serving the active context.
    active: usize,
    stats: BtuStats,
    /// Per-context counters, in first-seen order; empty until a context
    /// switch happens.
    context_stats: Vec<ContextBtuStats>,
}

impl BranchTraceUnit {
    /// Creates a BTU for a program's encoded traces.
    pub fn new(config: BtuConfig, encoded: EncodedTraces) -> Self {
        BranchTraceUnit {
            config,
            images: vec![TraceImage::new(encoded)],
            context_images: Vec::new(),
            active_image: 0,
            active_context: None,
            victim_policy: VictimPolicy::default(),
            partitions: vec![Partition::default(); config.partitions.max(1)],
            active: 0,
            stats: BtuStats::default(),
            context_stats: Vec::new(),
        }
    }

    /// Registers `context`'s own encoded traces, so lookups made while that
    /// context is active replay *its* program rather than the construction
    /// image — distinct tenants' branch PCs overlap, so consolidation needs
    /// one image per context. Re-registering a context replaces its image
    /// (fresh cursors). Contexts without a registered image are served by
    /// the construction image, preserving the single-program behavior.
    pub fn register_context(&mut self, context: u64, encoded: EncodedTraces) {
        let image = TraceImage::new(encoded);
        if let Some(idx) = self
            .context_images
            .iter()
            .find(|(c, _)| *c == context)
            .map(|&(_, i)| i)
        {
            self.images[idx] = image;
        } else {
            self.context_images.push((context, self.images.len()));
            self.images.push(image);
        }
        if self.active_context == Some(context) {
            self.active_image = self.image_of(context);
        }
    }

    /// The image index serving `context` (0 — the construction image — when
    /// the context registered no image of its own).
    fn image_of(&self, context: u64) -> usize {
        self.context_images
            .iter()
            .find(|(c, _)| *c == context)
            .map_or(0, |&(_, i)| i)
    }

    /// The mutable per-context counter row for `context`, created on first
    /// use.
    fn context_stats_mut(&mut self, context: u64) -> &mut ContextBtuStats {
        let idx = match self.context_stats.iter().position(|c| c.context == context) {
            Some(idx) => idx,
            None => {
                self.context_stats.push(ContextBtuStats {
                    context,
                    ..ContextBtuStats::default()
                });
                self.context_stats.len() - 1
            }
        };
        &mut self.context_stats[idx]
    }

    /// The configuration in use.
    #[inline]
    pub fn config(&self) -> BtuConfig {
        self.config
    }

    /// Re-sizes the Trace Cache, evicting least-recently-used residents of
    /// every partition if the new geometry is smaller. `0` models a unit
    /// with no Trace Cache at all: every multi-target lookup streams its
    /// trace from the data pages and pays the miss penalty (the
    /// `Cassandra-noTC` scenario).
    pub fn set_trace_cache_entries(&mut self, entries: usize) {
        self.config.entries = entries;
        for idx in 0..self.partitions.len() {
            let capacity = self.partition_capacity(idx);
            let partition = &mut self.partitions[idx];
            while partition.resident.len() > capacity {
                partition.resident.remove(0);
                self.stats.evictions += 1;
            }
        }
    }

    /// Re-partitions the Trace Cache into `partitions` way-partitions
    /// (clamped to at least one). Repartitioning is a reconfiguration: all
    /// residency is evicted (the checkpoint state in the data pages
    /// survives, exactly as for a flush) and the active context restarts on
    /// partition 0.
    pub fn set_partitions(&mut self, partitions: usize) {
        let evicted: usize = self.partitions.iter().map(|p| p.resident.len()).sum();
        self.stats.evictions += evicted as u64;
        self.config.partitions = partitions.max(1);
        self.partitions = vec![Partition::default(); self.config.partitions];
        self.active = 0;
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> BtuStats {
        self.stats
    }

    /// Per-context statistics in first-seen order; empty until a context
    /// switch happens (single-tenant runs never pay for the attribution).
    #[inline]
    pub fn context_stats(&self) -> &[ContextBtuStats] {
        &self.context_stats
    }

    /// The steal-victim policy in use.
    #[inline]
    pub fn victim_policy(&self) -> VictimPolicy {
        self.victim_policy
    }

    /// Selects how oversubscribed partition steals pick their victim (the
    /// OS-scheduler model switches this to [`VictimPolicy::SmallestWorkingSet`]).
    pub fn set_victim_policy(&mut self, policy: VictimPolicy) {
        self.victim_policy = policy;
    }

    /// Total BTU storage in bits (for the area model). Partitioning divides
    /// the existing ways; it adds no storage.
    pub fn storage_bits(&self) -> usize {
        self.config.entries * entry_storage_bits()
    }

    /// The hint of an analyzed crypto branch, answered from the dense LUT.
    ///
    /// Equivalent to `encoded().hint(pc)` without the tree lookup; frontends
    /// probe this once per fetched branch.
    #[inline]
    pub fn hint(&self, pc: usize) -> Option<BranchHint> {
        self.images[self.active_image]
            .hint_of
            .get(pc)
            .copied()
            .flatten()
    }

    /// Whether the given PC is an analyzed crypto branch the BTU knows about.
    #[inline]
    pub fn knows_branch(&self, pc: usize) -> bool {
        self.hint(pc).is_some()
    }

    // ------------------------------------------------------- partitioning

    /// Number of Trace Cache ways owned by partition `idx`: the `entries`
    /// ways are divided as evenly as possible, earlier partitions taking the
    /// remainder.
    pub fn partition_capacity(&self, idx: usize) -> usize {
        let n = self.partitions.len();
        self.config.entries / n + usize::from(idx < self.config.entries % n)
    }

    /// The partition currently serving fetch.
    #[inline]
    pub fn active_partition(&self) -> usize {
        self.active
    }

    /// The context owning partition `idx`, if any.
    pub fn partition_owner(&self, idx: usize) -> Option<u64> {
        self.partitions.get(idx).and_then(|p| p.owner)
    }

    /// Resident entry count per partition (used by tests and reports).
    pub fn partition_occupancy(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.resident.len()).collect()
    }

    /// Returns the partition assigned to `context`, assigning one if the
    /// context has none yet: an unowned partition if available (drained
    /// first — leftover residency belongs to whoever filled it before the
    /// partition was claimed, and contexts never share ways), otherwise an
    /// owned partition is stolen per the [`VictimPolicy`] (its residents are
    /// evicted — their checkpoints live in the data pages and survive). The
    /// victim is never the active partition when more than one partition
    /// exists; with a single partition the steal degrades to a
    /// flush-equivalent (counted as a flush, not a steal).
    pub fn assign_partition(&mut self, context: u64) -> usize {
        if let Some(idx) = self
            .partitions
            .iter()
            .position(|p| p.owner == Some(context))
        {
            return idx;
        }
        if let Some(idx) = self.partitions.iter().position(|p| p.owner.is_none()) {
            self.evict_partition(idx);
            self.partitions[idx].owner = Some(context);
            return idx;
        }
        // All partitions owned: pick a steal victim.
        let n = self.partitions.len();
        if n == 1 {
            // Nothing to steal but the active context's own ways: that is a
            // whole-unit flush, not a partition steal — drain the unit and
            // hand the single partition over.
            self.stats.flushes += 1;
            self.evict_partition(0);
            self.partitions[0].owner = Some(context);
            return 0;
        }
        let victim = self.pick_victim();
        debug_assert_ne!(victim, self.active, "never steal the active partition");
        self.stats.partition_steals += 1;
        if let Some(owner) = self.partitions[victim].owner {
            self.context_stats_mut(owner).steals_suffered += 1;
        }
        self.evict_partition(victim);
        self.partitions[victim].owner = Some(context);
        victim
    }

    /// The steal victim among the (all-owned) non-active partitions:
    /// furthest from the active in round-robin order, or — under
    /// [`VictimPolicy::SmallestWorkingSet`] — the owner with the smallest
    /// observed working set (ties fall back to furthest).
    fn pick_victim(&self) -> usize {
        let n = self.partitions.len();
        let furthest = (self.active + n - 1) % n;
        match self.victim_policy {
            VictimPolicy::FurthestFromActive => furthest,
            VictimPolicy::SmallestWorkingSet => {
                let ws_of = |idx: usize| -> u64 {
                    self.partitions[idx]
                        .owner
                        .and_then(|owner| self.context_stats.iter().find(|c| c.context == owner))
                        .map_or(0, |c| c.working_set_estimate)
                };
                // Walk non-active partitions furthest-first so ties keep
                // the furthest victim.
                let mut victim = furthest;
                let mut best = ws_of(furthest);
                for distance in (1..n - 1).rev() {
                    let idx = (self.active + distance) % n;
                    let ws = ws_of(idx);
                    if ws < best {
                        victim = idx;
                        best = ws;
                    }
                }
                victim
            }
        }
    }

    /// Explicitly moves `context` onto partition `idx` (clamped to the
    /// partition count): the target's foreign residents are evicted, and the
    /// context's previous partition (if different) is disowned and drained.
    /// If the moved context was the active one, the active partition follows
    /// it, so fetch never fills a disowned partition. This is the Q4
    /// partition-reassignment primitive; [`switch_context`] is the common
    /// assign-and-activate flow on top of [`assign_partition`].
    ///
    /// [`switch_context`]: BranchTraceUnit::switch_context
    /// [`assign_partition`]: BranchTraceUnit::assign_partition
    pub fn reassign(&mut self, context: u64, idx: usize) {
        let idx = idx.min(self.partitions.len() - 1);
        if let Some(old) = self
            .partitions
            .iter()
            .position(|p| p.owner == Some(context))
        {
            if old == idx {
                return;
            }
            self.evict_partition(old);
            self.partitions[old].owner = None;
            if self.active == old {
                self.active = idx;
            }
        }
        if self.partitions[idx].owner.is_some() {
            self.stats.partition_steals += 1;
        }
        self.evict_partition(idx);
        self.partitions[idx].owner = Some(context);
    }

    /// A context switch served by partition reassignment instead of a
    /// whole-unit flush (Q4): the incoming context's partition becomes the
    /// active one, leaving every other partition's residency warm. Returns
    /// true if the active context actually changed — a switch to the
    /// already-active context is a no-op, and the very first call merely
    /// registers the initial context; neither counts as a switch, so
    /// `partition_switches` agrees with the pipeline's `context_switches`.
    pub fn switch_context(&mut self, context: u64) -> bool {
        if self.active_context == Some(context) {
            return false;
        }
        // Update the outgoing context's working-set estimate from what it
        // left resident (an integer EWMA: half old estimate, half current).
        if let Some(outgoing) = self.active_context {
            let resident = self.partitions[self.active].resident.len() as u64;
            let stats = self.context_stats_mut(outgoing);
            stats.working_set_estimate = (stats.working_set_estimate + resident).div_ceil(2);
        }
        let first = self.active_context.is_none();
        self.active_context = Some(context);
        self.active = self.assign_partition(context);
        self.active_image = self.image_of(context);
        if first {
            // Registration of the initial context, not a switch.
            return false;
        }
        self.stats.partition_switches += 1;
        self.context_stats_mut(context).partition_switches += 1;
        true
    }

    /// Drops every resident of partition `idx`, counting the evictions
    /// (attributed to the partition's owner, when it has one).
    fn evict_partition(&mut self, idx: usize) {
        let drained = self.partitions[idx].resident.len();
        self.stats.evictions += drained as u64;
        if drained > 0 {
            if let Some(owner) = self.partitions[idx].owner {
                self.context_stats_mut(owner).evictions += drained as u64;
            }
        }
        self.partitions[idx].resident.clear();
    }

    // ------------------------------------------------------------ lookups

    /// Fetch flow (§5.3): determines the next PC for a crypto branch being
    /// fetched and advances the speculative trace position.
    pub fn fetch_lookup(&mut self, pc: usize) -> BtuLookup {
        self.stats.lookups += 1;
        if let Some(context) = self.active_context {
            self.context_stats_mut(context).lookups += 1;
        }
        match self.hint(pc) {
            // Single-target branches carry their target in the hint bytes and
            // consume no BTU resources.
            Some(BranchHint::SingleTarget { target }) => {
                self.stats.single_target_lookups += 1;
                BtuLookup {
                    next_pc: Some(target),
                    hit: true,
                    needs_stall: false,
                    extra_latency: 0,
                }
            }
            // No usable trace: the frontend stalls until the branch resolves
            // (footnote 4 / §4.3).
            Some(BranchHint::InputDependent) | Some(BranchHint::NotExecuted) | None => {
                self.stats.stall_lookups += 1;
                BtuLookup {
                    next_pc: None,
                    hit: false,
                    needs_stall: true,
                    extra_latency: 0,
                }
            }
            Some(BranchHint::MultiTarget { .. }) => {
                let (hit, extra_latency) = self.touch_entry(pc);
                let image = &mut self.images[self.active_image];
                let slot = image.slot_of.get(pc).copied().unwrap_or(NO_SLOT);
                if slot == NO_SLOT {
                    // Hinted as multi-target but the trace is unavailable:
                    // behave like a stall (defensive; not expected).
                    self.stats.stall_lookups += 1;
                    return BtuLookup {
                        next_pc: None,
                        hit: false,
                        needs_stall: true,
                        extra_latency,
                    };
                }
                let trace = &image.slot_traces[slot as usize];
                let next_pc = image.slots[slot as usize].fetch.next_target(trace);
                BtuLookup {
                    next_pc,
                    hit,
                    needs_stall: next_pc.is_none(),
                    extra_latency,
                }
            }
        }
    }

    /// Commit flow (§5.3): a crypto branch retired, so the committed position
    /// (Checkpoint Table) advances by one execution.
    pub fn commit_branch(&mut self, pc: usize) {
        if !matches!(self.hint(pc), Some(BranchHint::MultiTarget { .. })) {
            return;
        }
        self.stats.commits += 1;
        let image = &mut self.images[self.active_image];
        let slot = image.slot_of.get(pc).copied().unwrap_or(NO_SLOT);
        if slot != NO_SLOT {
            let trace = &image.slot_traces[slot as usize];
            let _ = image.slots[slot as usize].committed.next_target(trace);
        }
    }

    /// Squash recovery (§5.3): undo all speculative fetch-side progress, for
    /// every branch of every image, back to the committed checkpoints (only
    /// the active image can have run ahead, but rolling back all of them is
    /// cheap and unconditionally correct).
    pub fn squash(&mut self) {
        self.stats.squashes += 1;
        for image in &mut self.images {
            for state in &mut image.slots {
                let committed = state.committed.position();
                state.fetch.restore(committed);
            }
        }
    }

    /// Flushes the Trace Cache residency of every partition (the whole-unit
    /// context-switch model of discussion Q4). Replay positions survive in
    /// the checkpoint data pages, but the next lookups pay the miss latency
    /// again.
    pub fn flush(&mut self) {
        self.stats.flushes += 1;
        for partition in &mut self.partitions {
            partition.resident.clear();
        }
    }

    /// Marks `pc` resident in the active partition, evicting its least
    /// recently used entry if the partition is full. Returns
    /// `(hit, extra_latency)`.
    fn touch_entry(&mut self, pc: usize) -> (bool, u64) {
        let active_ctx = self.active_context;
        let capacity = self.partition_capacity(self.active);
        if capacity == 0 {
            // No Trace Cache ways for this context: nothing is ever
            // resident, every lookup streams.
            self.stats.misses += 1;
            if let Some(ctx) = active_ctx {
                self.context_stats_mut(ctx).misses += 1;
            }
            return (false, self.config.miss_penalty);
        }
        let partition = &mut self.partitions[self.active];
        if let Some(idx) = partition.resident.iter().position(|&p| p == pc) {
            partition.resident.remove(idx);
            partition.resident.push(pc);
            self.stats.hits += 1;
            if let Some(ctx) = active_ctx {
                self.context_stats_mut(ctx).hits += 1;
            }
            return (true, 0);
        }
        self.stats.misses += 1;
        let mut evicted = false;
        if partition.resident.len() >= capacity {
            partition.resident.remove(0);
            self.stats.evictions += 1;
            evicted = true;
        }
        partition.resident.push(pc);
        if let Some(ctx) = active_ctx {
            let stats = self.context_stats_mut(ctx);
            stats.misses += 1;
            if evicted {
                stats.evictions += 1;
            }
        }
        (false, self.config.miss_penalty)
    }

    /// Number of elements per Trace Cache entry (exposed for the CPU model's
    /// prefetch bookkeeping).
    #[inline]
    pub fn elements_per_entry(&self) -> usize {
        ELEMENTS_PER_ENTRY
    }

    /// Read-only access to the active context's encoded traces (the
    /// construction image in single-tenant runs; used by reports).
    #[inline]
    pub fn encoded(&self) -> &EncodedTraces {
        &self.images[self.active_image].encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cassandra_isa::builder::ProgramBuilder;
    use cassandra_isa::program::Program;
    use cassandra_isa::reg::{A0, A1, ZERO};
    use cassandra_trace::genproc::generate_traces;

    fn nested_program() -> Program {
        let mut b = ProgramBuilder::new("nested");
        b.begin_crypto();
        b.li(A0, 3);
        b.label("outer");
        b.li(A1, 2);
        b.label("inner");
        b.addi(A1, A1, -1);
        b.bne(A1, ZERO, "inner");
        b.addi(A0, A0, -1);
        b.bne(A0, ZERO, "outer");
        b.end_crypto();
        b.halt();
        b.build().unwrap()
    }

    fn btu_with(program: &Program, config: BtuConfig) -> BranchTraceUnit {
        let bundle = generate_traces(program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(program, &bundle);
        BranchTraceUnit::new(config, encoded)
    }

    fn btu_for(program: &Program) -> BranchTraceUnit {
        btu_with(program, BtuConfig::default())
    }

    /// Replays a program's crypto branches through the BTU and checks every
    /// redirection against the functional execution.
    #[test]
    fn btu_replays_exactly_the_sequential_trace() {
        let program = nested_program();
        let raw = cassandra_trace::collect::collect_raw_traces(&program, 100_000).unwrap();
        let mut btu = btu_for(&program);
        // Interleave lookups in program order: walk the recorded outcomes.
        let mut per_branch_expected: Vec<(usize, usize)> = Vec::new();
        for (pc, trace) in &raw {
            for &t in &trace.targets {
                per_branch_expected.push((*pc, t));
            }
        }
        // For each branch, lookups must yield targets in recorded order.
        let mut positions: std::collections::BTreeMap<usize, usize> = Default::default();
        for (pc, expected) in per_branch_expected {
            let lookup = btu.fetch_lookup(pc);
            btu.commit_branch(pc);
            let i = positions.entry(pc).or_insert(0);
            *i += 1;
            assert_eq!(lookup.next_pc, Some(expected), "branch {pc}, execution {i}");
            assert!(!lookup.needs_stall);
        }
    }

    #[test]
    fn squash_rolls_back_uncommitted_lookups() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let inner_pc = 3;
        // Fetch two outcomes speculatively without committing.
        let first = btu.fetch_lookup(inner_pc).next_pc;
        let _second = btu.fetch_lookup(inner_pc).next_pc;
        btu.squash();
        // After the squash the replay restarts from the committed position.
        assert_eq!(btu.fetch_lookup(inner_pc).next_pc, first);
        assert!(btu.stats().squashes >= 1);
    }

    #[test]
    fn flush_only_costs_a_refill() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let inner_pc = 3;
        let a = btu.fetch_lookup(inner_pc);
        btu.commit_branch(inner_pc);
        assert_eq!(a.extra_latency, btu.config().miss_penalty, "cold miss");
        btu.flush();
        let b = btu.fetch_lookup(inner_pc);
        // The replay position survives the flush; only the miss latency is
        // paid again.
        assert_eq!(b.extra_latency, btu.config().miss_penalty);
        assert!(b.next_pc.is_some());
        assert_eq!(btu.stats().flushes, 1);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // A tiny 1-entry BTU with two multi-target branches must evict.
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 1,
                miss_penalty: 5,
                ..BtuConfig::default()
            },
        );
        let inner_pc = 3;
        let outer_pc = 5;
        btu.fetch_lookup(inner_pc);
        btu.fetch_lookup(outer_pc);
        btu.fetch_lookup(inner_pc);
        assert!(btu.stats().evictions >= 1);
        assert_eq!(btu.stats().hits, 0);
    }

    #[test]
    fn one_entry_btu_restores_checkpoints_under_squash_despite_eviction() {
        // A 1-entry Trace Cache thrashed by two multi-target branches must
        // still replay correctly after a squash: the Checkpoint Table state
        // lives in the data pages and survives evictions.
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 1,
                miss_penalty: 7,
                ..BtuConfig::default()
            },
        );
        let inner_pc = 3;
        let outer_pc = 5;

        // Commit the first inner execution, then run ahead speculatively.
        let first = btu.fetch_lookup(inner_pc).next_pc.unwrap();
        btu.commit_branch(inner_pc);
        let second = btu.fetch_lookup(inner_pc).next_pc.unwrap();
        // Touching the outer branch evicts the inner entry (capacity 1).
        let outer = btu.fetch_lookup(outer_pc);
        assert!(btu.stats().evictions >= 1, "the 1-entry cache must evict");
        assert_eq!(outer.extra_latency, 7, "outer is a cold miss");

        // Squash: both fetch cursors roll back to their committed positions.
        btu.squash();
        let replayed = btu.fetch_lookup(inner_pc);
        assert_eq!(
            replayed.next_pc,
            Some(second),
            "inner replay resumes at the committed checkpoint, not at {first}"
        );
        assert_eq!(
            replayed.extra_latency, 7,
            "the evicted entry pays the miss penalty again"
        );
        // The outer branch restarts from its (never-committed) beginning.
        assert_eq!(btu.fetch_lookup(outer_pc).next_pc, outer.next_pc);
    }

    #[test]
    fn zero_entry_trace_cache_always_misses() {
        // entries == 0 models Cassandra-noTC: nothing is ever resident, every
        // multi-target lookup streams its trace and pays the miss penalty.
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 0,
                miss_penalty: 9,
                ..BtuConfig::default()
            },
        );
        let inner_pc = 3;
        for _ in 0..4 {
            let lookup = btu.fetch_lookup(inner_pc);
            assert!(lookup.next_pc.is_some(), "replay still works without a TC");
            assert_eq!(lookup.extra_latency, 9);
            btu.commit_branch(inner_pc);
        }
        assert_eq!(btu.stats().hits, 0);
        assert_eq!(btu.stats().misses, 4);
    }

    #[test]
    fn shrinking_the_trace_cache_evicts_down_to_the_new_geometry() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        btu.fetch_lookup(3);
        btu.fetch_lookup(5);
        let evictions_before = btu.stats().evictions;
        btu.set_trace_cache_entries(0);
        assert_eq!(btu.config().entries, 0);
        assert_eq!(btu.stats().evictions, evictions_before + 2);
        // Subsequent lookups keep replaying, as cold misses.
        let lookup = btu.fetch_lookup(3);
        assert!(lookup.next_pc.is_some());
        assert_eq!(lookup.extra_latency, btu.config().miss_penalty);
    }

    #[test]
    fn unknown_branches_stall() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        let lookup = btu.fetch_lookup(999);
        assert!(lookup.needs_stall);
        assert_eq!(lookup.next_pc, None);
    }

    #[test]
    fn storage_is_about_the_papers_budget() {
        let program = nested_program();
        let btu = btu_for(&program);
        let kib = btu.storage_bits() as f64 / 8.0 / 1024.0;
        assert!(kib > 1.0 && kib < 2.5, "{kib:.2} KiB");
    }

    // --------------------------------------------------------- partitioning

    #[test]
    fn partition_capacities_split_the_ways_evenly() {
        let program = nested_program();
        let btu = btu_with(
            &program,
            BtuConfig {
                entries: 5,
                partitions: 2,
                ..BtuConfig::default()
            },
        );
        assert_eq!(btu.partition_capacity(0), 3);
        assert_eq!(btu.partition_capacity(1), 2);
        assert_eq!(btu.partition_occupancy(), vec![0, 0]);
    }

    #[test]
    fn context_switch_keeps_the_other_partition_warm() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        let inner_pc = 3;
        // Context 0 warms up its partition.
        btu.switch_context(0);
        assert_eq!(btu.fetch_lookup(inner_pc).extra_latency, 11, "cold miss");
        assert_eq!(btu.fetch_lookup(inner_pc).extra_latency, 0, "warm hit");
        // Context 1 gets its own partition; its first lookup is cold.
        assert!(btu.switch_context(1));
        assert_eq!(btu.fetch_lookup(inner_pc).extra_latency, 11);
        // Switching back to context 0 is free: its partition stayed warm.
        assert!(btu.switch_context(0));
        assert_eq!(btu.fetch_lookup(inner_pc).extra_latency, 0);
        // The first switch_context(0) registered the initial context; only
        // the two real changes count.
        assert_eq!(btu.stats().partition_switches, 2);
        assert_eq!(btu.stats().partition_steals, 0);
        assert_eq!(btu.partition_occupancy(), vec![1, 1]);
    }

    #[test]
    fn switching_to_the_active_context_is_not_a_switch() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        // First call registers the initial context: not a switch.
        assert!(!btu.switch_context(0));
        assert_eq!(btu.stats().partition_switches, 0);
        // Re-switching to the already-active context is a no-op.
        for _ in 0..5 {
            assert!(!btu.switch_context(0));
        }
        assert_eq!(btu.stats().partition_switches, 0);
        assert_eq!(btu.stats().partition_steals, 0);
        // A real change counts exactly once.
        assert!(btu.switch_context(1));
        assert_eq!(btu.stats().partition_switches, 1);
    }

    #[test]
    fn steals_never_pick_the_active_partition() {
        // Property: whenever a steal happens (n > 1, all partitions owned),
        // the victim is not the partition the outgoing context was running
        // on — its residency survives the switch.
        let program = nested_program();
        let inner_pc = 3;
        for partitions in 2..=4 {
            let mut btu = btu_with(
                &program,
                BtuConfig {
                    entries: 8,
                    miss_penalty: 5,
                    partitions,
                },
            );
            // Saturate: one context per partition, each with residency.
            for ctx in 0..partitions as u64 {
                btu.switch_context(ctx);
                btu.fetch_lookup(inner_pc);
                btu.commit_branch(inner_pc);
            }
            // Every further context must steal — never from the partition
            // that was active at the moment of the steal.
            for ctx in partitions as u64..3 * partitions as u64 {
                let outgoing = btu.active_partition();
                let outgoing_occupancy = btu.partition_occupancy()[outgoing];
                let steals_before = btu.stats().partition_steals;
                btu.switch_context(ctx);
                assert_eq!(btu.stats().partition_steals, steals_before + 1);
                assert_ne!(
                    btu.active_partition(),
                    outgoing,
                    "{partitions} partitions: stole the active partition"
                );
                assert_eq!(
                    btu.partition_occupancy()[outgoing],
                    outgoing_occupancy,
                    "{partitions} partitions: the outgoing partition must stay warm"
                );
                btu.fetch_lookup(inner_pc);
                btu.commit_branch(inner_pc);
            }
        }
    }

    #[test]
    fn single_partition_oversubscription_degrades_to_a_flush() {
        // With one partition there is nothing to steal but the active
        // context's own ways: rotating contexts must be priced as
        // whole-unit flushes, never as silent self-steals.
        let program = nested_program();
        let inner_pc = 3;
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 1,
            },
        );
        btu.switch_context(0);
        btu.fetch_lookup(inner_pc);
        btu.commit_branch(inner_pc);
        let first = btu.switch_context(1);
        assert!(first, "the context did change");
        assert_eq!(btu.stats().partition_steals, 0, "no silent self-steal");
        assert_eq!(btu.stats().flushes, 1, "priced as a flush");
        assert_eq!(btu.partition_owner(0), Some(1));
        assert_eq!(btu.partition_occupancy(), vec![0], "drained like a flush");
        // Replay continues correctly from the checkpointed position.
        let lookup = btu.fetch_lookup(inner_pc);
        assert!(lookup.next_pc.is_some());
        assert_eq!(lookup.extra_latency, 11, "cold refill after the flush");
    }

    #[test]
    fn working_set_victim_policy_steals_from_the_smallest_context() {
        let program = nested_program();
        let inner_pc = 3;
        let outer_pc = 5;
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 9,
                miss_penalty: 5,
                partitions: 3,
            },
        );
        btu.set_victim_policy(VictimPolicy::SmallestWorkingSet);
        assert_eq!(btu.victim_policy(), VictimPolicy::SmallestWorkingSet);
        // Context 0 keeps a 1-entry working set (estimate settles at 1);
        // context 1 keeps a 2-entry one and is switched out twice so its
        // estimate grows to 2; context 2 runs last on the active partition.
        btu.switch_context(0); // registers on partition 0
        btu.fetch_lookup(inner_pc);
        btu.switch_context(1); // partition 1
        btu.fetch_lookup(inner_pc);
        btu.fetch_lookup(outer_pc);
        btu.switch_context(0);
        btu.switch_context(1);
        btu.switch_context(0);
        btu.switch_context(2); // partition 2 (now active)
        btu.fetch_lookup(inner_pc);
        // Furthest-from-active would pick partition 1 (context 1); the
        // working-set policy must instead steal from context 0, the
        // smallest non-active owner.
        btu.switch_context(3);
        assert_eq!(btu.stats().partition_steals, 1);
        assert_eq!(
            btu.partition_owner(btu.active_partition()),
            Some(3),
            "context 3 owns the stolen partition"
        );
        assert!(
            !(0..3).any(|idx| btu.partition_owner(idx) == Some(0)),
            "context 0 (smallest working set) was the victim"
        );
        let p1_occupancy = (0..3)
            .find(|&idx| btu.partition_owner(idx) == Some(1))
            .map(|idx| btu.partition_occupancy()[idx])
            .unwrap();
        assert_eq!(
            p1_occupancy, 2,
            "context 1's bigger working set stayed warm"
        );
    }

    #[test]
    fn per_context_stats_attribute_hits_and_steals() {
        let program = nested_program();
        let inner_pc = 3;
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        assert!(
            btu.context_stats().is_empty(),
            "no attribution before switches"
        );
        btu.switch_context(0);
        btu.fetch_lookup(inner_pc); // miss
        btu.fetch_lookup(inner_pc); // hit
        btu.switch_context(1);
        btu.fetch_lookup(inner_pc); // miss in its own partition
        btu.switch_context(2); // steals context 0's partition
        let of = |ctx: u64| {
            *btu.context_stats()
                .iter()
                .find(|c| c.context == ctx)
                .unwrap()
        };
        assert_eq!(of(0).lookups, 2);
        assert_eq!(of(0).hits, 1);
        assert_eq!(of(0).misses, 1);
        assert_eq!(of(0).steals_suffered, 1);
        assert_eq!(of(0).evictions, 1, "the steal drained its entry");
        assert!((of(0).hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(of(1).lookups, 1);
        assert_eq!(of(1).misses, 1);
        assert_eq!(of(1).steals_suffered, 0);
        assert_eq!(of(2).partition_switches, 1);
        assert!(
            of(0).working_set_estimate >= 1,
            "context 0 was switched out with residency"
        );
    }

    #[test]
    fn oversubscribed_contexts_steal_partitions() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        let inner_pc = 3;
        btu.switch_context(0);
        btu.fetch_lookup(inner_pc);
        btu.switch_context(1);
        btu.fetch_lookup(inner_pc);
        // A third context must steal a partition (not the active one).
        btu.switch_context(2);
        assert_eq!(btu.stats().partition_steals, 1);
        assert_eq!(btu.partition_owner(btu.active_partition()), Some(2));
        // The stolen partition was drained.
        assert_eq!(
            btu.partition_occupancy().iter().sum::<usize>(),
            1,
            "only the surviving context's entry remains resident"
        );
    }

    #[test]
    fn reassign_moves_a_context_and_drains_both_partitions() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        let inner_pc = 3;
        btu.switch_context(0);
        btu.fetch_lookup(inner_pc);
        btu.switch_context(1);
        btu.fetch_lookup(inner_pc);
        let evictions_before = btu.stats().evictions;
        // Move context 0 onto context 1's partition: both the old partition
        // and the stolen one are drained.
        let target = 1 - btu.active_partition();
        btu.reassign(0, btu.active_partition());
        assert_eq!(btu.partition_owner(1 - target), Some(0));
        assert_eq!(btu.stats().evictions, evictions_before + 2);
        assert_eq!(btu.stats().partition_steals, 1);
        // Reassigning a context to its own partition is a no-op.
        let steals = btu.stats().partition_steals;
        btu.reassign(0, 1 - target);
        assert_eq!(btu.stats().partition_steals, steals);
    }

    #[test]
    fn partition_reassignment_preserves_replay_positions() {
        // The checkpoint state lives in the data pages: arbitrary partition
        // churn changes only residency (latency), never the replayed target.
        let program = nested_program();
        let raw = cassandra_trace::collect::collect_raw_traces(&program, 100_000).unwrap();
        let inner_pc = 3;
        let expected: &[usize] = raw
            .iter()
            .find(|(pc, _)| **pc == inner_pc)
            .map(|(_, t)| t.targets.as_slice())
            .unwrap();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 2,
                miss_penalty: 3,
                partitions: 2,
            },
        );
        for (i, want) in expected.iter().enumerate() {
            btu.switch_context((i % 3) as u64); // includes steals
            let lookup = btu.fetch_lookup(inner_pc);
            btu.commit_branch(inner_pc);
            assert_eq!(lookup.next_pc, Some(*want), "execution {i}");
        }
    }

    #[test]
    fn claiming_an_unowned_partition_drains_leftover_residency() {
        // Residency filled before any context registered (owner None) must
        // not be inherited by the first context that claims the partition:
        // contexts never share warm ways.
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        let inner_pc = 3;
        btu.fetch_lookup(inner_pc); // warms unowned partition 0
        assert_eq!(btu.partition_occupancy(), vec![1, 0]);
        btu.switch_context(7); // first registered context claims partition 0
        assert_eq!(btu.partition_owner(0), Some(7));
        assert_eq!(
            btu.partition_occupancy(),
            vec![0, 0],
            "the claimed partition starts cold"
        );
        assert_eq!(btu.fetch_lookup(inner_pc).extra_latency, 11);
    }

    #[test]
    fn reassigning_the_active_context_moves_the_active_partition() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        btu.switch_context(0);
        assert_eq!(btu.active_partition(), 0);
        btu.reassign(0, 1);
        assert_eq!(
            btu.active_partition(),
            1,
            "fetch must follow the reassigned active context"
        );
        assert_eq!(btu.partition_owner(1), Some(0));
        assert_eq!(btu.partition_owner(0), None);
        // Fetch now fills the owned partition, not the disowned one.
        btu.fetch_lookup(3);
        assert_eq!(btu.partition_occupancy(), vec![0, 1]);
    }

    #[test]
    fn whole_flush_drains_every_partition() {
        let program = nested_program();
        let mut btu = btu_with(
            &program,
            BtuConfig {
                entries: 4,
                miss_penalty: 11,
                partitions: 2,
            },
        );
        btu.switch_context(0);
        btu.fetch_lookup(3);
        btu.switch_context(1);
        btu.fetch_lookup(3);
        btu.flush();
        assert_eq!(btu.partition_occupancy(), vec![0, 0]);
        assert_eq!(btu.stats().flushes, 1);
    }

    #[test]
    fn set_partitions_repartitions_and_evicts() {
        let program = nested_program();
        let mut btu = btu_for(&program);
        btu.fetch_lookup(3);
        btu.fetch_lookup(5);
        let before = btu.stats().evictions;
        btu.set_partitions(2);
        assert_eq!(btu.config().partitions, 2);
        assert_eq!(btu.stats().evictions, before + 2);
        assert_eq!(btu.partition_occupancy(), vec![0, 0]);
        // Replay still works after repartitioning.
        assert!(btu.fetch_lookup(3).next_pc.is_some());
        // Clamped to at least one partition.
        btu.set_partitions(0);
        assert_eq!(btu.config().partitions, 1);
    }
}
