//! Offline stand-in for `serde_json`.
//!
//! Encodes the vendored serde shim's [`Value`] tree as JSON text and parses
//! it back. Numbers round-trip exactly: integers keep 64-bit precision and
//! floats are printed with Rust's shortest-roundtrip formatting. Non-finite
//! floats are written as `null` (real serde_json errors instead; the
//! evaluation pipeline never produces them on purpose, but a lossy `null` is
//! friendlier than a panic in report rendering).

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible in this shim; the `Result` matches the real serde_json API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Infallible in this shim; the `Result` matches the real serde_json API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a value shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {pos} of JSON input"
        )));
    }
    Ok(value)
}

// ------------------------------------------------------------------ writer

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is Rust's shortest representation that parses
                // back to the same bits, so text round-trips are exact.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {} of JSON input",
            byte as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in JSON array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in JSON object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
        None => Err(Error::custom("unexpected end of JSON input")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::custom(format!(
            "invalid JSON literal at byte {}",
            *pos
        )))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("invalid escape in JSON string")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
            None => return Err(Error::custom("unterminated JSON string")),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::custom("invalid number in JSON input"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("invalid JSON value at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-5",
            "18446744073709551615",
            "1.5",
            "\"hi\"",
        ] {
            let v = parse_value_str(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, json, "round trip of {json}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":"x\ny"}],"c":{"d":-1.25}}"#;
        let v = parse_value_str(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        let v = Value::Float(0.1 + 0.2);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        let back = parse_value_str(&out).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_float_keeps_float_type() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert!((back - 2.0).abs() < f64::EPSILON);
    }
}
