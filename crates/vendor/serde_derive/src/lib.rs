//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this repository has no access to crates.io, so
//! the real `serde` stack cannot be used. This proc-macro crate derives the
//! *simplified* `Serialize` / `Deserialize` traits defined by the vendored
//! `serde` shim (`crates/vendor/serde`): `Serialize::to_value` produces a
//! JSON-like [`serde::Value`] tree and `Deserialize::from_value` reads one
//! back.
//!
//! Supported item shapes (everything this workspace derives on):
//!
//! * structs with named fields (externally an object, keyed by field name);
//! * newtype structs (transparent) and tuple structs (arrays);
//! * enums with unit variants (strings), newtype/tuple variants and struct
//!   variants (externally tagged single-entry objects) — the same external
//!   representation real serde uses by default;
//! * the `#[serde(skip)]` field attribute (field is omitted on serialize and
//!   filled from `Default::default()` on deserialize);
//! * the `#[serde(skip_if_default)]` field attribute (field is omitted on
//!   serialize when it equals `Default::default()` — requires `PartialEq +
//!   Default` on the field type — and filled from `Default::default()` when
//!   missing on deserialize). This keeps additive fields byte-invisible in
//!   golden fixtures until they carry data.
//!
//! Generics are intentionally unsupported; the derive fails with a clear
//! compile error if it encounters them.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ------------------------------------------------------------------ model

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    skip: bool,
    /// Omit on serialize while the value equals `Default::default()`;
    /// deserialize tolerates the field's absence the same way.
    skip_if_default: bool,
}

/// Field-level `#[serde(...)]` switches recognised by the shim.
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    skip_if_default: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Unnamed(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ----------------------------------------------------------------- parsing

type Tokens = Peekable<<TokenStream as IntoIterator>::IntoIter>;

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Consumes leading outer attributes, returning which `#[serde(...)]`
/// field switches (`skip`, `skip_if_default`) were present.
fn skip_attributes(tokens: &mut Tokens) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(tt) = tokens.peek() {
        if !is_punct(tt, '#') {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(first), Some(second)) = (inner.first(), inner.get(1)) {
                    if is_ident(first, "serde") {
                        if let TokenTree::Group(args) = second {
                            let body = args.stream().to_string();
                            for part in body.split(',') {
                                match part.trim() {
                                    "skip" => attrs.skip = true,
                                    "skip_if_default" => attrs.skip_if_default = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
            other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
        }
    }
    attrs
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &mut Tokens) {
    if let Some(tt) = tokens.peek() {
        if is_ident(tt, "pub") {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes tokens of a type (or discriminant expression) up to a top-level
/// comma, tracking `<`/`>` nesting so commas inside generics don't terminate
/// the scan. The trailing comma itself is consumed.
fn skip_until_comma(tokens: &mut Tokens) {
    let mut angle_depth: i64 = 0;
    while let Some(tt) = tokens.peek() {
        if angle_depth == 0 && is_punct(tt, ',') {
            tokens.next();
            return;
        }
        if is_punct(tt, '<') {
            angle_depth += 1;
        } else if is_punct(tt, '>') {
            angle_depth -= 1;
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive shim: expected field name, got {tt:?}");
        };
        match tokens.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&mut tokens);
        fields.push(Field {
            name: Some(name.to_string()),
            skip: attrs.skip,
            skip_if_default: attrs.skip_if_default,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let attrs = skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_until_comma(&mut tokens);
        fields.push(Field {
            name: None,
            skip: attrs.skip,
            skip_if_default: attrs.skip_if_default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde_derive shim: expected variant name, got {tt:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Unnamed(parse_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Consume an optional discriminant and the trailing comma.
        skip_until_comma(&mut tokens);
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if let Some(tt) = tokens.peek() {
        if is_punct(tt, '<') {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Unnamed(parse_tuple_fields(g.stream())),
            },
            Some(tt) if is_punct(&tt, ';') => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

// ----------------------------------------------------------------- codegen

fn serialize_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.skip {
            continue;
        }
        let name = f.name.as_deref().unwrap();
        let push = format!(
            "fields.push((\"{name}\".to_string(), \
             ::serde::Serialize::to_value(&{access_prefix}{name})));\n"
        );
        if f.skip_if_default {
            // A generic helper pins `Rhs = T` for the comparison; a literal
            // `!= Default::default()` is ambiguous for types (like `Vec`)
            // with several `PartialEq` impls.
            out.push_str(&format!(
                "if !::serde::is_default(&{access_prefix}{name}) {{\n{push}}}\n"
            ));
        } else {
            out.push_str(&push);
        }
    }
    out.push_str("::serde::Value::Object(fields)\n");
    out
}

fn deserialize_named_fields(type_path: &str, fields: &[Field], source: &str) -> String {
    let mut out = format!("{type_path} {{\n");
    for f in fields {
        let name = f.name.as_deref().unwrap();
        if f.skip {
            out.push_str(&format!("{name}: ::std::default::Default::default(),\n"));
        } else if f.skip_if_default {
            out.push_str(&format!(
                "{name}: match ::serde::Value::get_field({source}, \"{name}\") {{\n\
                 ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::Value::get_field({source}, \"{name}\") {{\n\
                 ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"missing field `{name}` for `{type_path}`\")),\n\
                 }},\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => serialize_named_fields(fs, "self."),
                Fields::Unnamed(fs) if fs.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Fields::Unnamed(fs) => {
                    let items: Vec<String> = (0..fs.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Named(fs) => {
                        let binders: Vec<String> =
                            fs.iter().map(|f| f.name.clone().unwrap()).collect();
                        let body = serialize_named_fields(fs, "*");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{body}.wrap_variant(\"{vname}\")\n}}\n",
                            binders.join(", ")
                        ));
                    }
                    Fields::Unnamed(fs) if fs.len() == 1 => arms.push_str(&format!(
                        "{name}::{vname}(x0) => \
                         ::serde::Serialize::to_value(x0).wrap_variant(\"{vname}\"),\n"
                    )),
                    Fields::Unnamed(fs) => {
                        let binders: Vec<String> = (0..fs.len()).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Array(vec![{}])\
                             .wrap_variant(\"{vname}\"),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok({})",
                    deserialize_named_fields(name, fs, "value")
                ),
                Fields::Unnamed(fs) if fs.len() == 1 => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Unnamed(fs) => {
                    let n = fs.len();
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"expected array for tuple struct `{name}`\"))?;\n\
                         if arr.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple length for `{name}`\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Named(fs) => {
                        let path = format!("{name}::{vname}");
                        let ctor = deserialize_named_fields(&path, fs, "inner");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({ctor}),\n"
                        ));
                    }
                    Fields::Unnamed(fs) if fs.len() == 1 => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Unnamed(fs) => {
                        let n = fs.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| ::serde::Error::custom(\
                             \"expected array for variant `{vname}`\"))?;\n\
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong tuple length for `{vname}`\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                 return match s {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for `{name}`\")),\n}};\n}}\n\
                 let (tag, inner) = value.as_single_entry().ok_or_else(|| \
                 ::serde::Error::custom(\"expected string or single-entry object for \
                 enum `{name}`\"))?;\n\
                 match tag {{\n{data_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for `{name}`\")),\n}}\n}}\n}}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}
