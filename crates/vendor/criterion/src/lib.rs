//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `Bencher::iter`, `black_box`, `criterion_group!` and `criterion_main!` —
//! backed by a simple wall-clock measurement loop (median / mean / min over
//! `sample_size` samples). It produces readable numbers, not statistics of
//! criterion's quality, but keeps `cargo bench` working without crates.io.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark function and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 1,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 1,
            };
            f(&mut bencher);
            samples.push(bencher.per_iteration());
        }
        samples.sort_unstable();
        let min = samples.first().copied().unwrap_or_default();
        let median = samples[samples.len() / 2];
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(samples.len().max(1)).unwrap_or(1);
        println!(
            "bench {id:<50} median {median:>12?}   mean {mean:>12?}   min {min:>12?}   ({} samples)",
            samples.len()
        );
        self
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `inner`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        // A few iterations per sample to amortise timer overhead.
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(inner());
        }
        self.elapsed = start.elapsed();
        self.iterations = ITERS;
    }

    fn per_iteration(&self) -> Duration {
        self.elapsed / u32::try_from(self.iterations.max(1)).unwrap_or(1)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
