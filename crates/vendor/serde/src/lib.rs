//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors a
//! minimal serde-compatible surface: the [`Serialize`] / [`Deserialize`]
//! traits (simplified to a value-tree model instead of serde's
//! serializer-visitor model), a JSON-like [`Value`] tree, and re-exported
//! derive macros from the sibling `serde_derive` shim. The external data
//! representation matches real serde's defaults (externally tagged enums,
//! `{secs, nanos}` durations, `{start, end}` ranges, stringified map keys),
//! so swapping the real crates back in later does not change any on-disk
//! formats.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::ops::Range;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON-like value tree: the intermediate representation every
/// [`Serialize`] implementation produces and every [`Deserialize`]
/// implementation consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer (always `< 0`; non-negative integers use `UInt`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key→value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// For externally tagged enums: the single `(tag, value)` entry.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self.as_object() {
            Some([(k, v)]) => Some((k.as_str(), v)),
            _ => None,
        }
    }

    /// Wraps `self` into `{ tag: self }` (externally tagged enum encoding).
    pub fn wrap_variant(self, tag: &str) -> Value {
        Value::Object(vec![(tag.to_string(), self)])
    }

    /// The value as an `i128` if it is any integer (exact).
    fn as_integer(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i128::from(*i)),
            Value::UInt(u) => Some(i128::from(*u)),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => Some(*f as i128),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            // Non-finite floats are serialized as null.
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Whether `value` equals its type's `Default`. Used by the derive's
/// `#[serde(skip_if_default)]` codegen: the generic signature pins the
/// comparison's right-hand side to `T`, which a literal
/// `!= Default::default()` cannot for types with several `PartialEq` impls.
pub fn is_default<T: Default + PartialEq>(value: &T) -> bool {
    *value == T::default()
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_integer()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v < 0 {
                    Value::Int(v)
                } else {
                    Value::UInt(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_integer()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).map(|v| v as isize)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

/// Map keys: JSON objects require string keys, so integer keys are written
/// and read back through their decimal representation (matching serde_json).
pub trait JsonKey: Sized {
    /// The key's string form.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `key` does not parse.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(concat!("invalid map key for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for Range<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let start = value
            .get_field("start")
            .ok_or_else(|| Error::custom("missing `start` in range"))?;
        let end = value
            .get_field("end")
            .ok_or_else(|| Error::custom("missing `end` in range"))?;
        Ok(T::from_value(start)?..T::from_value(end)?)
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get_field("secs")
            .ok_or_else(|| Error::custom("missing `secs` in duration"))?;
        let nanos = value
            .get_field("nanos")
            .ok_or_else(|| Error::custom("missing `nanos` in duration"))?;
        Ok(Duration::new(
            u64::from_value(secs)?,
            u32::from_value(nanos)?,
        ))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
