//! Loopback integration tests: a real server thread driven over TCP, with
//! the results cross-checked against a direct offline `Evaluator` run.

use cassandra_core::eval::{EvalRecord, Evaluator};
use cassandra_kernels::suite;
use cassandra_server::{
    serve, Client, EvalService, GridSpec, Request, Response, SweepSummary, WorkloadSpec,
    PROTOCOL_VERSION,
};
use std::time::Duration;

fn start() -> (cassandra_server::ServerHandle, Client) {
    let handle = serve("127.0.0.1:0", EvalService::new(), 2).expect("bind loopback");
    let client = Client::connect(handle.addr()).expect("connect");
    (handle, client)
}

fn submit_quick_pair(client: &mut Client) {
    for spec in [
        WorkloadSpec::Kernel {
            family: "chacha20".to_string(),
            size: 64,
            name: None,
        },
        WorkloadSpec::Suite {
            name: "DES_ct".to_string(),
        },
    ] {
        let responses = client.request(&Request::Submit { spec }).unwrap();
        assert!(
            matches!(responses.last(), Some(Response::Submitted { .. })),
            "{responses:?}"
        );
    }
}

fn quick_grid() -> GridSpec {
    GridSpec {
        defenses: vec!["Cassandra".to_string(), "Tournament".to_string()],
        tournament_thresholds: vec![2],
        btu_partitions: Vec::new(),
        btu_entries: vec![8, 16],
        miss_penalties: Vec::new(),
        redirect_penalties: Vec::new(),
    }
}

/// Splits a sweep response stream into its records and closing summary,
/// checking the interleaved `Progress` lines count every record exactly
/// once: `cells_done` is strictly monotone, `cells_total` never changes.
fn split_stream(responses: Vec<Response>) -> (Vec<EvalRecord>, SweepSummary) {
    let mut records = Vec::new();
    let mut summary = None;
    let mut last_done = 0usize;
    let mut total = None;
    for response in responses {
        match response {
            Response::Record(record) => records.push(record),
            Response::Progress {
                cells_done,
                cells_total,
            } => {
                assert!(
                    cells_done > last_done,
                    "progress must be strictly monotone ({last_done} -> {cells_done})"
                );
                last_done = cells_done;
                assert_eq!(
                    *total.get_or_insert(cells_total),
                    cells_total,
                    "cells_total must be constant across the stream"
                );
            }
            Response::Done(done) => summary = Some(done),
            other => panic!("unexpected response in sweep stream: {other:?}"),
        }
    }
    if let Some(total) = total {
        assert_eq!(last_done, total, "the final progress line covers the grid");
        assert_eq!(total, records.len(), "one progress tick per record");
    }
    (records, summary.expect("sweep stream must end with Done"))
}

/// The wire form of a record with wall-clock times zeroed: everything else
/// (stats, labels, cache flags) must match an offline run byte for byte.
fn canonical_json(record: &EvalRecord) -> String {
    let mut record = record.clone();
    record.timing.analysis = Duration::ZERO;
    record.timing.simulate = Duration::ZERO;
    serde_json::to_string(&record).expect("serialize record")
}

#[test]
fn grid_sweep_matches_offline_evaluator_byte_for_byte() {
    let (handle, mut client) = start();
    submit_quick_pair(&mut client);

    let responses = client
        .request(&Request::GridSweep {
            workloads: Vec::new(),
            grid: quick_grid(),
        })
        .unwrap();
    let (records, summary) = split_stream(responses);

    // Offline reference: the same grid expanded by the same code, swept by a
    // fresh Evaluator over the same workloads.
    let designs = quick_grid().to_grid().unwrap().expand().designs().to_vec();
    let workloads = vec![suite::chacha20_workload(64), suite::des_workload(32)];
    let mut offline = Evaluator::new();
    let expected = offline.sweep_matrix(&workloads, &designs).unwrap();

    assert_eq!(summary.records, records.len());
    assert_eq!(records.len(), expected.len(), "2 workloads × 4 grid cells");
    for (served, local) in records.iter().zip(&expected) {
        assert_eq!(
            canonical_json(served),
            canonical_json(local),
            "{}/{} diverged between server and offline run",
            served.workload,
            served.design
        );
    }

    // The summary reuses the offline Experiment formatter verbatim.
    assert_eq!(
        summary.report,
        cassandra_core::report::render_text(&cassandra_core::registry::ExperimentOutput::Records(
            expected
        ))
    );
    // The threshold axis annotates every base defense (it is ignored by
    // non-tournament frontends but kept in the label for self-description).
    assert_eq!(
        summary.designs,
        [
            "Cassandra+btu8+thr2",
            "Cassandra+thr2",
            "Tournament+btu8+thr2",
            "Tournament+thr2"
        ]
    );

    client.request(&Request::Shutdown).unwrap();
    handle.join();
}

/// Sweeps stream one `Progress` line per completed cell in the pinned PR 9
/// wire encoding, and `Submit` reports its single unit of work the same
/// way. (The monotone/constant invariants are asserted by `split_stream`
/// on every sweep in this suite; this test pins the raw bytes.)
#[test]
fn sweeps_and_submit_stream_pinned_progress_lines() {
    let (_handle, mut client) = start();

    let responses = client
        .request(&Request::Submit {
            spec: WorkloadSpec::Kernel {
                family: "chacha20".to_string(),
                size: 64,
                name: None,
            },
        })
        .unwrap();
    assert_eq!(
        responses.first(),
        Some(&Response::Progress {
            cells_done: 1,
            cells_total: 1
        }),
        "Submit reports its single unit of work before Submitted"
    );
    assert!(matches!(responses.last(), Some(Response::Submitted { .. })));

    // The raw wire bytes of a sweep's progress lines are the pinned PR 9
    // encoding — read the stream line by line instead of via the client's
    // decoder.
    client
        .send(&Request::Sweep {
            workloads: Vec::new(),
            policies: vec!["UnsafeBaseline".to_string(), "Cassandra".to_string()],
        })
        .unwrap();
    let mut progress_lines = Vec::new();
    loop {
        let (_, response) = client.recv_tagged().unwrap();
        if let Response::Progress {
            cells_done,
            cells_total,
        } = &response
        {
            progress_lines.push(format!(
                "{{\"Progress\":{{\"cells_done\":{cells_done},\"cells_total\":{cells_total}}}}}"
            ));
            assert_eq!(
                serde_json::to_string(&response).unwrap(),
                progress_lines.last().unwrap().as_str(),
                "Progress keeps the pinned PR 9 field order"
            );
        }
        if response.is_terminal() {
            break;
        }
    }
    assert_eq!(
        progress_lines,
        [
            "{\"Progress\":{\"cells_done\":1,\"cells_total\":2}}",
            "{\"Progress\":{\"cells_done\":2,\"cells_total\":2}}"
        ]
    );
}

#[test]
fn second_identical_request_is_served_from_the_analysis_cache() {
    let (_handle, mut client) = start();
    submit_quick_pair(&mut client);

    let first = client
        .request(&Request::GridSweep {
            workloads: Vec::new(),
            grid: quick_grid(),
        })
        .unwrap();
    let (first_records, first_summary) = split_stream(first);
    assert_eq!(first_summary.cache.misses, 2, "one analysis per workload");
    assert!(first_records.iter().all(|r| !r.timing.analysis_cached));

    let second = client
        .request(&Request::GridSweep {
            workloads: Vec::new(),
            grid: quick_grid(),
        })
        .unwrap();
    let (second_records, second_summary) = split_stream(second);

    // No new analyses; the memoized bundles served the repeat request.
    assert_eq!(second_summary.cache.misses, first_summary.cache.misses);
    assert!(
        second_summary.cache.hits >= first_summary.cache.hits + 2,
        "repeat request must hit the cache: {:?} -> {:?}",
        first_summary.cache,
        second_summary.cache
    );
    assert_eq!(second_summary.analyzed_programs, 2);
    assert!(second_records.iter().all(|r| r.timing.analysis_cached));

    // And the simulations themselves are deterministic.
    for (a, b) in first_records.iter().zip(&second_records) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.design, b.design);
    }
}

#[test]
fn sweep_by_labels_can_address_grid_entries() {
    let (_handle, mut client) = start();
    submit_quick_pair(&mut client);

    // Before the grid runs, its labels are unknown.
    let responses = client
        .request(&Request::Sweep {
            workloads: Vec::new(),
            policies: vec!["Tournament+thr2".to_string()],
        })
        .unwrap();
    assert!(matches!(&responses[0], Response::Error { message }
        if message.contains("Tournament+thr2")));

    client
        .request(&Request::GridSweep {
            workloads: Vec::new(),
            grid: quick_grid(),
        })
        .unwrap();

    // The grid expansion registered its cells: now addressable by label.
    let responses = client
        .request(&Request::Sweep {
            workloads: vec!["ChaCha20_ct".to_string()],
            policies: vec!["Tournament+thr2".to_string(), "UnsafeBaseline".to_string()],
        })
        .unwrap();
    let (records, summary) = split_stream(responses);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].design, "Tournament+thr2");
    assert_eq!(records[1].design, "UnsafeBaseline");
    assert!(records.iter().all(|r| r.workload == "ChaCha20_ct"));
    assert!(records.iter().all(|r| r.timing.analysis_cached));
    assert!(summary.cache.hits > 0);

    let responses = client.request(&Request::ListPolicies).unwrap();
    let Response::Policies { labels } = &responses[0] else {
        panic!("expected Policies, got {responses:?}");
    };
    assert!(labels.iter().any(|l| l == "Tournament+thr2"));
    assert!(labels.iter().any(|l| l == "Cassandra+btu8+thr2"));
}

#[test]
fn malformed_requests_get_an_error_envelope_and_the_connection_survives() {
    let (_handle, mut client) = start();

    // Unparseable JSON.
    let responses = client.request_raw("{this is not json").unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message } if message.contains("invalid request")),
        "{responses:?}"
    );

    // Valid JSON, wrong shape.
    let responses = client.request_raw("{\"NoSuchRequest\": {}}").unwrap();
    assert!(
        matches!(&responses[0], Response::Error { .. }),
        "{responses:?}"
    );

    // Unknown workload spec inside a valid request.
    let responses = client
        .request(&Request::Submit {
            spec: WorkloadSpec::Suite {
                name: "NotAWorkload".to_string(),
            },
        })
        .unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message } if message.contains("NotAWorkload")),
        "{responses:?}"
    );

    // The same connection still serves well-formed requests.
    let responses = client.request(&Request::Ping).unwrap();
    assert_eq!(
        responses,
        [Response::Pong {
            protocol: PROTOCOL_VERSION
        }]
    );
}

#[test]
fn two_clients_share_one_session() {
    let (handle, mut first) = start();
    submit_quick_pair(&mut first);
    let responses = first
        .request(&Request::Sweep {
            workloads: vec!["DES_ct".to_string()],
            policies: vec!["Cassandra".to_string()],
        })
        .unwrap();
    let (_, summary) = split_stream(responses);
    assert_eq!(summary.cache.misses, 1);

    // A second client sees the submitted workloads and hits the same cache.
    let mut second = Client::connect(handle.addr()).unwrap();
    let responses = second.request(&Request::ListWorkloads).unwrap();
    let Response::Workloads { names } = &responses[0] else {
        panic!("expected Workloads, got {responses:?}");
    };
    assert_eq!(names, &["ChaCha20_ct", "DES_ct"]);

    let responses = second
        .request(&Request::Sweep {
            workloads: vec!["DES_ct".to_string()],
            policies: vec!["Cassandra".to_string()],
        })
        .unwrap();
    let (records, summary) = split_stream(responses);
    assert_eq!(summary.cache.misses, 1, "no re-analysis for client #2");
    assert!(summary.cache.hits >= 1);
    assert!(records[0].timing.analysis_cached);
}

#[test]
fn shutdown_request_stops_the_server_cleanly() {
    let (handle, mut client) = start();
    let responses = client.request(&Request::Shutdown).unwrap();
    assert_eq!(responses, [Response::ShuttingDown]);
    // join() only returns once the accept loop and workers have exited.
    handle.join();
}

#[test]
fn shutdown_with_unwritable_cache_file_completes_but_reports_the_failure() {
    // A directory path is a guaranteed-unwritable snapshot target on every
    // platform the suite runs on.
    let service = EvalService::new().with_cache_file(std::env::temp_dir());
    let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();

    // The failed snapshot surfaces as an Error line *before* ShuttingDown;
    // read the stream manually since Error is itself a terminal response.
    client.send(&Request::Shutdown).unwrap();
    let first = client.recv().unwrap();
    assert!(
        matches!(&first, Response::Error { message } if message.contains("not saved")),
        "expected the snapshot failure, got {first:?}"
    );
    let second = client.recv().unwrap();
    assert_eq!(second, Response::ShuttingDown);

    // The failure must not wedge the shutdown: the accept loop and workers
    // still exit.
    handle.join();
}

#[test]
fn consolidation_experiment_runs_over_the_wire() {
    let (_handle, mut client) = start();

    // Experiments need workloads, like sweeps.
    let responses = client
        .request(&Request::Experiment {
            name: "consolidation".to_string(),
            workloads: Vec::new(),
        })
        .unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message } if message.contains("Submit")),
        "{responses:?}"
    );

    submit_quick_pair(&mut client);

    // Unknown experiment names are error envelopes listing the registry.
    let responses = client
        .request(&Request::Experiment {
            name: "nope".to_string(),
            workloads: Vec::new(),
        })
        .unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message }
            if message.contains("nope") && message.contains("consolidation")),
        "{responses:?}"
    );

    let responses = client
        .request(&Request::Experiment {
            name: "consolidation".to_string(),
            workloads: Vec::new(),
        })
        .unwrap();
    let [Response::Experiment {
        name,
        title,
        output,
        report,
    }] = responses.as_slice()
    else {
        panic!("expected one Experiment response, got {responses:?}");
    };
    assert_eq!(name, "consolidation");
    assert!(title.contains("Consolidation"));
    let cassandra_core::registry::ExperimentOutput::Consolidation(result) = output else {
        panic!("expected Consolidation output, got {output:?}");
    };
    // The standard registry experiment: a 4-tenant mix cycled from the two
    // submitted workloads, under all three switch policies, with per-context
    // BTU statistics and per-tenant slowdowns vs solo.
    assert_eq!(result.tenant_count, 4);
    assert_eq!(
        result
            .policies
            .iter()
            .map(|p| p.policy.as_str())
            .collect::<Vec<_>>(),
        ["flush", "partition", "scheduler"]
    );
    for policy in &result.policies {
        assert_eq!(policy.tenants.len(), 4);
        assert!(policy.context_switches > 0, "{}", policy.policy);
        for tenant in &policy.tenants {
            assert!(tenant.btu.lookups > 0, "{}", tenant.workload);
            assert!((0.0..=1.0).contains(&tenant.btu.hit_rate()));
            assert!(tenant.slowdown.is_finite() && tenant.slowdown > 0.0);
            assert!(tenant.solo_cycles > 0);
        }
    }
    // The wire report is the offline text rendering, verbatim.
    assert_eq!(report, &cassandra_core::report::render_text(output));
    assert!(report.contains("Policy flush"));
    assert!(report.contains("HitRate"));
}

/// Two server processes split a workload set by exchanging shard
/// snapshots over the wire: every shard of a warmed server absorbed into
/// a cold one makes the cold server's sweep pure cache hits.
#[test]
fn shard_snapshots_round_trip_between_two_servers() {
    let (_warm_handle, mut warm) = start();
    submit_quick_pair(&mut warm);
    let sweep = Request::Sweep {
        workloads: Vec::new(),
        policies: vec!["Cassandra".to_string()],
    };
    let (_, summary) = split_stream(warm.request(&sweep).unwrap());
    assert_eq!(summary.cache.misses, 2, "warm server analyzes once");

    let (_cold_handle, mut cold) = start();
    submit_quick_pair(&mut cold);

    // Walk every shard of the warm server and absorb it into the cold one.
    // The shard count comes from the first response, so the client needs
    // no out-of-band knowledge of the server's sharding.
    let mut shard = 0;
    let mut shards = 1;
    let mut transferred = 0usize;
    let mut absorbed_total = 0usize;
    while shard < shards {
        let responses = warm.request(&Request::SnapshotShard { shard }).unwrap();
        let [Response::ShardSnapshot {
            shard: echoed,
            shards: total,
            snapshot,
        }] = responses.as_slice()
        else {
            panic!("expected ShardSnapshot, got {responses:?}");
        };
        assert_eq!(*echoed, shard);
        shards = *total;
        transferred += snapshot.entries.len();
        let responses = cold
            .request(&Request::AbsorbSnapshot {
                snapshot: snapshot.clone(),
            })
            .unwrap();
        let [Response::Absorbed { received, absorbed }] = responses.as_slice() else {
            panic!("expected Absorbed, got {responses:?}");
        };
        assert_eq!(*received, snapshot.entries.len());
        assert_eq!(*absorbed, *received, "the cold store had none of these");
        absorbed_total += absorbed;
        shard += 1;
    }
    assert_eq!(transferred, 2, "both analyses travelled");
    assert_eq!(absorbed_total, 2);

    // The cold server now serves the same sweep without analyzing.
    let (records, summary) = split_stream(cold.request(&sweep).unwrap());
    assert_eq!(
        summary.cache.misses, 0,
        "absorbed shards: {:?}",
        summary.cache
    );
    assert!(records.iter().all(|r| r.timing.analysis_cached));

    // Re-absorbing is idempotent, and out-of-range shards are an error,
    // not a panic.
    let responses = cold.request(&Request::SnapshotShard { shard: 0 }).unwrap();
    let [Response::ShardSnapshot { snapshot, .. }] = responses.as_slice() else {
        panic!("expected ShardSnapshot, got {responses:?}");
    };
    let responses = warm
        .request(&Request::AbsorbSnapshot {
            snapshot: snapshot.clone(),
        })
        .unwrap();
    let [Response::Absorbed { absorbed, .. }] = responses.as_slice() else {
        panic!("expected Absorbed, got {responses:?}");
    };
    assert_eq!(*absorbed, 0, "the warm server already has every entry");

    let responses = warm
        .request(&Request::SnapshotShard { shard: shards })
        .unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message } if message.contains("out of range")),
        "{responses:?}"
    );
}

#[test]
fn cache_file_warm_starts_a_restarted_server() {
    let path =
        std::env::temp_dir().join(format!("cassandra-warm-start-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let sweep = Request::Sweep {
        workloads: Vec::new(),
        policies: vec!["Cassandra".to_string(), "UnsafeBaseline".to_string()],
    };

    // First server lifetime: analyze two workloads, then a clean Shutdown
    // serializes the analysis store to the cache file.
    {
        let service = EvalService::new().with_cache_file(&path);
        let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        submit_quick_pair(&mut client);
        let (_, summary) = split_stream(client.request(&sweep).unwrap());
        assert_eq!(summary.cache.misses, 2, "cold start analyzes");
        client.request(&Request::Shutdown).unwrap();
        handle.join();
    }
    assert!(path.exists(), "clean Shutdown must write the snapshot");

    // Second lifetime: the store warm-starts from disk, so the same sweep
    // never runs Algorithm 2 — warmed entries surface as pure hits.
    {
        let service = EvalService::new().with_cache_file(&path);
        let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        submit_quick_pair(&mut client);
        let (records, summary) = split_stream(client.request(&sweep).unwrap());
        assert_eq!(summary.cache.misses, 0, "warm start: {:?}", summary.cache);
        assert_eq!(summary.cache.hits, 2);
        assert_eq!(summary.analyzed_programs, 2);
        assert!(records.iter().all(|r| r.timing.analysis_cached));
        client.request(&Request::Shutdown).unwrap();
        handle.join();
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_or_corrupt_cache_file_starts_cold() {
    let path = std::env::temp_dir().join(format!(
        "cassandra-corrupt-cache-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, "{not a snapshot").unwrap();
    let service = EvalService::new().with_cache_file(&path);
    assert!(service.store().is_empty(), "corrupt snapshots are ignored");
    let missing = EvalService::new()
        .with_cache_file(std::env::temp_dir().join("cassandra-never-written.json"));
    assert!(missing.store().is_empty());
    let _ = std::fs::remove_file(&path);
}
