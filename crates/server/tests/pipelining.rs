//! Pipelining integration tests: two tagged requests multiplexed on ONE
//! connection make independent progress (protocol v3), a stalled reader
//! does not push a short stream's `Done` behind a long sweep, and
//! cancelling one stream leaves the other's records byte-identical to a
//! solo run.

use cassandra_core::eval::EvalRecord;
use cassandra_server::{serve, Client, EvalService, GridSpec, Request, Response, WorkloadSpec};
use std::time::Duration;

const LONG_ID: &str = "long-grid";
const SHORT_ID: &str = "short-sweep";

/// 48 grid cells over the big chacha20(512) workload — seconds of wall
/// time in debug builds, so the short stream lands mid-sweep with a wide
/// margin.
fn long_grid() -> GridSpec {
    GridSpec {
        defenses: vec!["Cassandra".to_string()],
        tournament_thresholds: Vec::new(),
        btu_partitions: Vec::new(),
        btu_entries: vec![4, 8, 16, 32],
        miss_penalties: vec![10, 20, 30, 40],
        redirect_penalties: vec![6, 12, 24],
    }
}

fn long_request() -> Request {
    Request::GridSweep {
        workloads: vec!["ChaCha20_ct".to_string()],
        grid: long_grid(),
    }
}

/// The short stream sweeps a *different* workload, so its analysis-cache
/// flags are independent of whether the long sweep ran first.
fn short_request() -> Request {
    Request::Sweep {
        workloads: vec!["DES_ct".to_string()],
        policies: vec!["UnsafeBaseline".to_string(), "Cassandra".to_string()],
    }
}

fn start() -> (cassandra_server::ServerHandle, Client) {
    let handle = serve("127.0.0.1:0", EvalService::new(), 4).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for spec in [
        WorkloadSpec::Kernel {
            family: "chacha20".to_string(),
            size: 512,
            name: None,
        },
        WorkloadSpec::Suite {
            name: "DES_ct".to_string(),
        },
    ] {
        let responses = client.request(&Request::Submit { spec }).unwrap();
        assert!(
            matches!(responses.last(), Some(Response::Submitted { .. })),
            "{responses:?}"
        );
    }
    (handle, client)
}

/// The wire form of a record with wall-clock times zeroed; everything else
/// must match byte for byte.
fn canonical_json(record: &EvalRecord) -> String {
    let mut record = record.clone();
    record.timing.analysis = Duration::ZERO;
    record.timing.simulate = Duration::ZERO;
    serde_json::to_string(&record).expect("serialize record")
}

fn records_of(stream: &[Response]) -> Vec<&EvalRecord> {
    stream
        .iter()
        .filter_map(|response| match response {
            Response::Record(record) => Some(record),
            _ => None,
        })
        .collect()
}

/// Two overlapping tagged sweeps on one connection: the short stream's
/// `Done` must arrive long before the long sweep's, even when the client
/// stalls (does not read the socket at all) right after sending both —
/// the writer thread interleaves the streams fairly instead of queueing
/// the short stream behind the 48-cell grid.
#[test]
fn stalled_reader_does_not_delay_the_other_stream() {
    let (_handle, mut client) = start();

    client.send_tagged(LONG_ID, &long_request()).unwrap();
    client.send_tagged(SHORT_ID, &short_request()).unwrap();

    // Deliberate stall: both requests are in flight server-side, nothing
    // is being read. The short sweep finishes during the stall and its
    // lines are already interleaved onto the wire.
    std::thread::sleep(Duration::from_millis(500));

    let mut short_done = false;
    let mut long_done = false;
    let mut long_frames_before_short_done = None;
    let mut streams: std::collections::BTreeMap<String, Vec<Response>> = Default::default();
    while !(short_done && long_done) {
        let (id, response) = client.recv_tagged().unwrap();
        let id = id.expect("every pipelined line is tagged");
        let terminal = response.is_terminal();
        streams.entry(id.clone()).or_default().push(response);
        if terminal {
            match id.as_str() {
                SHORT_ID => {
                    short_done = true;
                    long_frames_before_short_done = Some(streams.get(LONG_ID).map_or(0, Vec::len));
                }
                LONG_ID => long_done = true,
                other => panic!("unexpected stream {other:?}"),
            }
        }
    }

    // Fairness, asserted structurally (wall-clock is meaningless when the
    // whole grid fits inside the stall): the short stream's Done must be
    // interleaved near the front of the wire, not queued behind the long
    // grid's ~97 frames. Round-robin puts it within the first handful;
    // allow a generous margin of half the grid.
    let ahead = long_frames_before_short_done.expect("short stream terminated");
    assert!(
        ahead < 48,
        "the short sweep's Done arrived after {ahead} long-grid frames — \
         it queued behind the long stream instead of interleaving"
    );
    assert!(
        !streams[SHORT_ID].is_empty() && streams[LONG_ID].len() > ahead,
        "both streams interleaved on one connection"
    );

    // Both streams are complete and well-formed.
    assert!(matches!(
        streams[LONG_ID].last(),
        Some(Response::Done(summary)) if summary.records == 48
    ));
    assert!(matches!(
        streams[SHORT_ID].last(),
        Some(Response::Done(summary)) if summary.records == 2
    ));
    assert_eq!(records_of(&streams[SHORT_ID]).len(), 2);
}

/// Cancelling stream A mid-flight leaves concurrent stream B's records
/// byte-identical (timings zeroed) to the same request served solo on a
/// fresh server.
#[test]
fn cancelling_one_stream_leaves_the_other_byte_identical() {
    // Solo reference run: the short sweep alone on a fresh server.
    let solo = {
        let (_handle, mut client) = start();
        client
            .request_tagged(SHORT_ID, &short_request())
            .expect("solo run")
    };
    let solo_records: Vec<String> = records_of(&solo)
        .iter()
        .map(|r| canonical_json(r))
        .collect();
    assert_eq!(solo_records.len(), 2);

    // Mixed run: the long grid and the short sweep share one connection;
    // the grid is cancelled mid-flight.
    let (_handle, mut client) = start();
    client.send_tagged(LONG_ID, &long_request()).unwrap();
    // Wait until the grid is genuinely mid-matrix before overlapping.
    let (id, first) = client.recv_tagged().unwrap();
    assert_eq!(id.as_deref(), Some(LONG_ID));
    assert!(matches!(first, Response::Record(_)), "{first:?}");
    client.send_tagged(SHORT_ID, &short_request()).unwrap();
    client.cancel(LONG_ID).unwrap();

    let streams = client.collect_multiplexed(&[LONG_ID, SHORT_ID]).unwrap();
    assert_eq!(
        streams[LONG_ID].last(),
        Some(&Response::Cancelled {
            id: LONG_ID.to_string()
        }),
        "the cancelled grid ends with Cancelled"
    );
    assert!(
        matches!(streams[SHORT_ID].last(), Some(Response::Done(_))),
        "the surviving sweep runs to completion: {:?}",
        streams[SHORT_ID].last()
    );

    let mixed_records: Vec<String> = records_of(&streams[SHORT_ID])
        .iter()
        .map(|r| canonical_json(r))
        .collect();
    assert_eq!(
        mixed_records, solo_records,
        "stream B must be byte-identical to its solo run"
    );
}

/// Bare (v1) heavy requests execute on the worker pool, not on the
/// per-connection reader thread: with a single-worker pool occupied by a
/// tagged grid sweep, a bare sweep sent on the same connection cannot
/// produce a single line until the grid's stream terminates — `--threads`
/// bounds concurrent simulations for v1 clients too, and the v1 lockstep
/// reply order is preserved.
#[test]
fn bare_heavy_requests_are_bounded_by_the_worker_pool() {
    let handle = serve("127.0.0.1:0", EvalService::new(), 1).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for spec in [
        WorkloadSpec::Kernel {
            family: "chacha20".to_string(),
            size: 512,
            name: None,
        },
        WorkloadSpec::Suite {
            name: "DES_ct".to_string(),
        },
    ] {
        let responses = client.request(&Request::Submit { spec }).unwrap();
        assert!(matches!(responses.last(), Some(Response::Submitted { .. })));
    }

    client.send_tagged(LONG_ID, &long_request()).unwrap();
    // The single worker is mid-grid.
    let (id, first) = client.recv_tagged().unwrap();
    assert_eq!(id.as_deref(), Some(LONG_ID));
    assert!(matches!(first, Response::Record(_)), "{first:?}");

    // A bare v1 sweep while the worker is busy: it must queue behind the
    // grid, not run concurrently on the reader thread.
    client.send(&short_request()).unwrap();
    client.cancel(LONG_ID).unwrap();

    // Read the interleaved wire until both the grid's terminal and the
    // bare sweep's terminal have arrived, tracking their relative order.
    // (The writer may still be draining a few already-queued grid frames
    // when the bare job starts, so individual lines may interleave near
    // the boundary; the bare sweep *finishing* before the cancelled grid's
    // terminal is what would prove it ran concurrently.)
    let mut long_terminated = false;
    let mut bare_lines_before_grid_done = 0usize;
    let mut bare: Vec<Response> = Vec::new();
    loop {
        let (id, response) = client.recv_tagged().unwrap();
        let terminal = response.is_terminal();
        match id.as_deref() {
            Some(LONG_ID) => {
                if terminal {
                    long_terminated = true;
                }
            }
            Some(other) => panic!("unexpected stream {other:?}"),
            None => {
                if !long_terminated {
                    bare_lines_before_grid_done += 1;
                }
                bare.push(response);
                if terminal {
                    break;
                }
            }
        }
    }
    assert!(
        long_terminated,
        "the bare sweep finished while the single worker was still running \
         the grid — it bypassed the worker-pool bound"
    );
    assert!(
        bare_lines_before_grid_done <= 1,
        "{bare_lines_before_grid_done} bare response lines arrived before the \
         grid's terminal — the bare sweep ran concurrently with the grid \
         instead of queueing for the single worker"
    );
    assert!(
        matches!(bare.last(), Some(Response::Done(summary)) if summary.records == 2),
        "the bare sweep completes normally once a worker frees up: {:?}",
        bare.last()
    );
}

/// `collect_multiplexed` routes interleaved lines by id and preserves
/// per-stream ordering: records within each stream arrive in matrix order
/// even though the two streams interleave freely on the wire.
#[test]
fn per_stream_ordering_is_preserved_under_multiplexing() {
    let (_handle, mut client) = start();
    client.send_tagged(LONG_ID, &long_request()).unwrap();
    client.send_tagged(SHORT_ID, &short_request()).unwrap();
    let streams = client.collect_multiplexed(&[LONG_ID, SHORT_ID]).unwrap();

    // Per-stream ordering: the long grid's records enumerate the matrix in
    // the same order a solo request streams them.
    let long_records = records_of(&streams[LONG_ID]);
    assert_eq!(long_records.len(), 48);
    let mut resolo = Client::connect(client.addr()).unwrap();
    let solo = resolo.request(&long_request()).unwrap();
    let solo_designs: Vec<&str> = records_of(&solo)
        .iter()
        .map(|r| r.design.as_str())
        .collect();
    let mixed_designs: Vec<&str> = long_records.iter().map(|r| r.design.as_str()).collect();
    assert_eq!(mixed_designs, solo_designs);

    // And progress on each stream counts that stream's own cells only.
    for (id, expected_total) in [(LONG_ID, 48usize), (SHORT_ID, 2usize)] {
        let mut last = 0usize;
        for response in &streams[id] {
            if let Response::Progress {
                cells_done,
                cells_total,
            } = response
            {
                assert_eq!(*cells_total, expected_total, "{id}");
                assert!(*cells_done > last, "{id}: monotone progress");
                last = *cells_done;
            }
        }
        assert_eq!(
            last, expected_total,
            "{id}: final progress covers the sweep"
        );
    }
}
