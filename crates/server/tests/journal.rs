//! Incremental cache-journal integration tests: completed analyses are
//! appended to `--cache-file` as they happen, so an *aborted* server (no
//! clean `Shutdown`) still restarts warm; a corrupt journal tail keeps the
//! valid prefix, and a garbage-only journal boots cold without panicking.

use cassandra_server::{serve, Client, EvalService, Request, Response, WorkloadSpec};
use std::io::Write;
use std::path::{Path, PathBuf};

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cassandra-journal-{tag}-{}.jsonl",
        std::process::id()
    ))
}

fn submit_quick_pair(client: &mut Client) {
    for spec in [
        WorkloadSpec::Kernel {
            family: "chacha20".to_string(),
            size: 64,
            name: None,
        },
        WorkloadSpec::Suite {
            name: "DES_ct".to_string(),
        },
    ] {
        let responses = client.request(&Request::Submit { spec }).unwrap();
        assert!(
            matches!(responses.last(), Some(Response::Submitted { .. })),
            "{responses:?}"
        );
    }
}

fn sweep() -> Request {
    Request::Sweep {
        workloads: Vec::new(),
        policies: vec!["Cassandra".to_string(), "UnsafeBaseline".to_string()],
    }
}

/// Runs one server lifetime against `path` and returns the sweep's cache
/// counters; `clean` issues a `Shutdown` request (which compacts the
/// journal), otherwise the handle is dropped without one — the abort case.
fn lifetime(path: &Path, clean: bool) -> (u64, u64) {
    let service = EvalService::new().with_cache_file(path);
    let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).unwrap();
    submit_quick_pair(&mut client);
    let responses = client.request(&sweep()).unwrap();
    let Some(Response::Done(summary)) = responses.last() else {
        panic!("expected Done, got {:?}", responses.last());
    };
    let counters = (summary.cache.hits, summary.cache.misses);
    if clean {
        client.request(&Request::Shutdown).unwrap();
        handle.join();
    }
    // !clean: the handle drops here without a Shutdown request — the
    // journal never compacts and save_cache never runs, like a crash
    // between appends.
    counters
}

/// An aborted server (dropped handle, no `Shutdown`) leaves its per-entry
/// journal appends on disk: the restarted server replays them and the
/// repeat sweep is pure cache hits.
#[test]
fn aborted_server_restarts_warm_from_the_journal() {
    let path = journal_path("abort");
    let _ = std::fs::remove_file(&path);

    let (_, misses) = lifetime(&path, false);
    assert_eq!(misses, 2, "cold start analyzes both workloads");

    // The journal holds one SnapshotEntry line per fresh analysis — no
    // compacted snapshot, because nothing ever shut down cleanly.
    let journal = std::fs::read_to_string(&path).expect("journal written incrementally");
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), 2, "one appended line per analysis:\n{journal}");
    assert!(
        lines.iter().all(|l| l.contains("\"fingerprint\"")),
        "appended lines are individual entries:\n{journal}"
    );

    let (hits, misses) = lifetime(&path, false);
    assert_eq!(misses, 0, "replayed journal serves the repeat sweep");
    assert_eq!(hits, 2);
    let _ = std::fs::remove_file(&path);
}

/// A clean `Shutdown` compacts the journal to a single snapshot line,
/// which also warm-starts the next lifetime.
#[test]
fn clean_shutdown_compacts_the_journal_to_one_snapshot_line() {
    let path = journal_path("compact");
    let _ = std::fs::remove_file(&path);

    let (_, misses) = lifetime(&path, true);
    assert_eq!(misses, 2);
    let journal = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(lines.len(), 1, "compaction folds the appends:\n{journal}");
    assert!(
        lines[0].starts_with("{\"entries\":["),
        "the compacted line is a whole-store snapshot:\n{journal}"
    );

    let (hits, misses) = lifetime(&path, true);
    assert_eq!(misses, 0, "the snapshot warm-starts the next lifetime");
    assert_eq!(hits, 2);
    let _ = std::fs::remove_file(&path);
}

/// A corrupt tail (crash mid-append) costs only the truncated line: replay
/// keeps every valid line before it, logs a warning, and does not panic.
#[test]
fn corrupt_journal_tail_keeps_the_valid_prefix() {
    let path = journal_path("tail");
    let _ = std::fs::remove_file(&path);

    let (_, misses) = lifetime(&path, false);
    assert_eq!(misses, 2);

    // Simulate a crash mid-append: a truncated, unparseable final line.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(b"{\"fingerprint\":12345,\"elapsed\"")
        .unwrap();
    drop(file);

    let (hits, misses) = lifetime(&path, false);
    assert_eq!(
        misses, 0,
        "the two valid lines before the corrupt tail must replay"
    );
    assert_eq!(hits, 2);
    let _ = std::fs::remove_file(&path);
}

/// Replay does not just tolerate a corrupt tail — it *repairs* the file
/// (compacting the valid prefix back to one snapshot line), so analyses
/// journaled after the corruption survive the next restart. Without the
/// repair, the first post-corruption append concatenates onto the
/// newline-less partial line, destroying that entry and stranding every
/// later one behind the corruption.
#[test]
fn corrupt_tail_is_repaired_so_later_appends_survive() {
    let path = journal_path("repair");
    let _ = std::fs::remove_file(&path);

    let (_, misses) = lifetime(&path, false);
    assert_eq!(misses, 2);

    // Crash mid-append: a truncated final line with no trailing newline.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(b"{\"fingerprint\":12345,\"elapsed\"")
        .unwrap();
    drop(file);

    // This lifetime replays the two-entry prefix (repairing the file) and
    // then journals a *third* analysis the prefix has not seen — and is
    // aborted without a clean Shutdown, so only the repair plus the append
    // persist it.
    {
        let service = EvalService::new().with_cache_file(&path);
        let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        submit_quick_pair(&mut client);
        let responses = client
            .request(&Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "sha256".to_string(),
                    size: 64,
                    name: None,
                },
            })
            .unwrap();
        assert!(matches!(responses.last(), Some(Response::Submitted { .. })));
        let responses = client.request(&sweep()).unwrap();
        let Some(Response::Done(summary)) = responses.last() else {
            panic!("expected Done, got {:?}", responses.last());
        };
        assert_eq!(
            summary.cache.misses, 1,
            "only the new sha256 workload is analyzed: {:?}",
            summary.cache
        );
        drop(handle); // Abort: no Shutdown, no closing compaction.
    }

    // The next lifetime must replay all three analyses: the repaired
    // prefix *and* the post-corruption append.
    {
        let service = EvalService::new().with_cache_file(&path);
        let handle = serve("127.0.0.1:0", service, 2).expect("bind loopback");
        let mut client = Client::connect(handle.addr()).unwrap();
        submit_quick_pair(&mut client);
        let responses = client
            .request(&Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "sha256".to_string(),
                    size: 64,
                    name: None,
                },
            })
            .unwrap();
        assert!(matches!(responses.last(), Some(Response::Submitted { .. })));
        let responses = client.request(&sweep()).unwrap();
        let Some(Response::Done(summary)) = responses.last() else {
            panic!("expected Done, got {:?}", responses.last());
        };
        assert_eq!(
            summary.cache.misses, 0,
            "the post-repair append must replay alongside the valid prefix: {:?}",
            summary.cache
        );
        assert_eq!(summary.cache.hits, 3);
    }
    let _ = std::fs::remove_file(&path);
}

/// A journal that is garbage from the first line boots cold — a logged
/// warning, an empty store, no panic.
#[test]
fn garbage_journal_boots_cold_without_panicking() {
    let path = journal_path("garbage");
    std::fs::write(&path, "this is not a journal\n{nor is this\n").unwrap();

    let service = EvalService::new().with_cache_file(&path);
    assert!(
        service.store().is_empty(),
        "garbage journals must be ignored, not replayed"
    );

    // The service still works (and journals fresh analyses) on top of it.
    let (_, misses) = lifetime(&path, false);
    assert_eq!(misses, 2, "cold start after a garbage journal");
    let _ = std::fs::remove_file(&path);
}
