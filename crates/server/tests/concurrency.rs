//! Concurrency integration tests: requests from different connections run
//! in parallel against one shared analysis store, and in-flight sweeps are
//! cancellable by their client-supplied id.
//!
//! The "long" sweep is a 48-cell grid over a chacha20(512) workload —
//! seconds of wall time in debug builds — so the short-request and
//! cancellation probes land mid-sweep with a wide margin.

use cassandra_server::{serve, Client, EvalService, GridSpec, Request, Response, WorkloadSpec};
use std::thread;
use std::time::Instant;

const SWEEP_ID: &str = "long-sweep";

/// 1 defense × 2 tournament thresholds × 4 BTU-entry values × 4 miss
/// penalties × 3 redirect penalties = 96 grid cells (the threshold axis
/// is priced identically by the Cassandra frontend — it exists purely to
/// widen the in-flight window so the mid-sweep probes below land with a
/// margin even in release builds).
fn long_grid() -> GridSpec {
    GridSpec {
        defenses: vec!["Cassandra".to_string()],
        tournament_thresholds: vec![2, 8],
        btu_partitions: Vec::new(),
        btu_entries: vec![4, 8, 16, 32],
        miss_penalties: vec![10, 20, 30, 40],
        redirect_penalties: vec![6, 12, 24],
    }
}

const LONG_GRID_CELLS: usize = 96;

fn start() -> (cassandra_server::ServerHandle, Client) {
    let handle = serve("127.0.0.1:0", EvalService::new(), 4).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let responses = client
        .request(&Request::Submit {
            spec: WorkloadSpec::Kernel {
                family: "chacha20".to_string(),
                size: 512,
                name: None,
            },
        })
        .unwrap();
    assert!(
        matches!(responses.last(), Some(Response::Submitted { .. })),
        "{responses:?}"
    );
    (handle, client)
}

/// Reads one request's full tagged stream, asserting the id is echoed on
/// every line; returns the stream and the instant the terminal line
/// arrived.
fn drain_tagged(client: &mut Client, id: &str) -> (Vec<Response>, Instant) {
    let mut responses = Vec::new();
    loop {
        let (got, response) = client.recv_tagged().unwrap();
        assert_eq!(got.as_deref(), Some(id), "every line echoes the request id");
        let terminal = response.is_terminal();
        responses.push(response);
        if terminal {
            return (responses, Instant::now());
        }
    }
}

/// A `Ping` and a `ListPolicies` issued on a second connection while a long
/// `GridSweep` streams on the first complete long before the sweep's
/// `Done` — the request that serialized every client on one session lock
/// is gone.
#[test]
fn short_requests_complete_during_a_long_sweep() {
    let (handle, mut sweeper) = start();

    let started = Instant::now();
    sweeper
        .send_tagged(
            SWEEP_ID,
            &Request::GridSweep {
                workloads: Vec::new(),
                grid: long_grid(),
            },
        )
        .unwrap();
    let drain = thread::spawn(move || {
        let (responses, done_at) = drain_tagged(&mut sweeper, SWEEP_ID);
        (responses, done_at)
    });

    // Probe from a second connection while the sweep is in flight.
    let mut prober = Client::connect(handle.addr()).unwrap();
    let ping_sent = Instant::now();
    let pong = prober.request(&Request::Ping).unwrap();
    let ping_latency = ping_sent.elapsed();
    assert!(matches!(pong[0], Response::Pong { .. }), "{pong:?}");
    let policies = prober.request(&Request::ListPolicies).unwrap();
    assert!(
        matches!(&policies[0], Response::Policies { labels } if !labels.is_empty()),
        "{policies:?}"
    );
    let probes_done_at = Instant::now();

    let (responses, sweep_done_at) = drain.join().unwrap();
    assert!(
        matches!(responses.last(), Some(Response::Done(_))),
        "sweep must end with Done: {:?}",
        responses.last()
    );
    let records = responses
        .iter()
        .filter(|r| matches!(r, Response::Record(_)))
        .count();
    assert_eq!(records, LONG_GRID_CELLS);

    // The short requests finished while the sweep was still streaming…
    assert!(
        probes_done_at < sweep_done_at,
        "Ping/ListPolicies must complete before the sweep's Done"
    );
    // …and were answered orders of magnitude faster than the sweep (the
    // serialized server answered them only after the whole sweep).
    let sweep_duration = sweep_done_at.duration_since(started);
    assert!(
        sweep_duration >= ping_latency * 5,
        "ping ({ping_latency:?}) must not wait for the sweep ({sweep_duration:?})"
    );

    handle.shutdown();
}

/// A `Cancel` naming an in-flight sweep's id terminates the sweep's stream
/// with `Cancelled` (no further `Record` lines, no `Done`), leaves the
/// store's analyses intact — the repeated sweep is pure cache hits — and
/// frees the id.
#[test]
fn cancel_stops_a_sweep_and_preserves_the_store() {
    let (_handle, mut sweeper) = start();

    sweeper
        .send_tagged(
            SWEEP_ID,
            &Request::GridSweep {
                workloads: Vec::new(),
                grid: long_grid(),
            },
        )
        .unwrap();

    // Wait for the first streamed record — the sweep is mid-matrix — then
    // cancel it from a side connection (the sweeping connection is busy
    // streaming).
    let (id, first) = sweeper.recv_tagged().unwrap();
    assert_eq!(id.as_deref(), Some(SWEEP_ID));
    assert!(matches!(first, Response::Record(_)), "{first:?}");
    let ack = sweeper.cancel(SWEEP_ID).unwrap();
    assert_eq!(
        ack,
        Response::Cancelled {
            id: SWEEP_ID.to_string()
        }
    );

    // The sweep's own stream terminates with Cancelled; whatever records
    // were already in flight arrive first, but far fewer than the matrix.
    let mut records = 1usize;
    let terminal = loop {
        let (id, response) = sweeper.recv_tagged().unwrap();
        assert_eq!(id.as_deref(), Some(SWEEP_ID));
        match response {
            Response::Record(_) => records += 1,
            Response::Progress { .. } => {}
            other => break other,
        }
    };
    assert_eq!(
        terminal,
        Response::Cancelled {
            id: SWEEP_ID.to_string()
        },
        "a cancelled sweep ends with Cancelled, not Done"
    );
    assert!(
        records < LONG_GRID_CELLS,
        "cancellation must stop the stream early ({records}/{LONG_GRID_CELLS} records)"
    );

    // The workload's analysis survived the cancellation: repeating the
    // same sweep re-simulates but never re-analyzes.
    let responses = sweeper
        .request(&Request::GridSweep {
            workloads: Vec::new(),
            grid: long_grid(),
        })
        .unwrap();
    let Some(Response::Done(summary)) = responses.last() else {
        panic!("expected Done, got {:?}", responses.last());
    };
    assert_eq!(summary.records, LONG_GRID_CELLS);
    assert_eq!(
        summary.cache.misses, 1,
        "repeat sweep after cancel must be pure cache hits: {:?}",
        summary.cache
    );
    for response in &responses {
        if let Response::Record(record) = response {
            assert!(
                record.timing.analysis_cached,
                "{}/{} re-analyzed after cancellation",
                record.workload, record.design
            );
        }
    }

    // The cancelled id is free again: cancelling it now is an error.
    let stale = sweeper.cancel(SWEEP_ID).unwrap();
    assert!(
        matches!(&stale, Response::Error { message } if message.contains(SWEEP_ID)),
        "{stale:?}"
    );
}

/// A `Cancel` naming an in-flight frontier Experiment stops the
/// successive-halving search mid-rung: the stream ends with `Cancelled`
/// after a partial progress count, the grid expansion leaves nothing in the
/// policy registry, and repeat requests complete from the analysis cache
/// (the second repeat re-analyzes nothing at all).
#[test]
fn cancel_stops_a_frontier_search_and_preserves_the_store() {
    const FRONTIER_ID: &str = "frontier-run";
    let (handle, mut sweeper) = start();

    let mut prober = Client::connect(handle.addr()).unwrap();
    let labels_before =
        |prober: &mut Client| -> Vec<Response> { prober.request(&Request::ListPolicies).unwrap() };
    let before = labels_before(&mut prober);

    // Wait for the first streamed progress line — the search is past its
    // security probes and mid-rung — then cancel it. The whole quick-suite
    // search takes only tens of milliseconds in release builds, so on a
    // loaded single-core host the search can occasionally outrun the
    // cancel; when it does (the ack is a not-in-flight `Error`, or the
    // stream still terminated with `Experiment`), drain the completed
    // stream and try again — repeats are served from the analysis cache,
    // so retries are cheap and the cancel lands mid-run within a few
    // attempts.
    let responses = {
        let mut attempts = 0;
        loop {
            sweeper
                .send_tagged(
                    FRONTIER_ID,
                    &Request::Experiment {
                        name: "frontier".to_string(),
                        workloads: Vec::new(),
                    },
                )
                .unwrap();
            let (id, first) = sweeper.recv_tagged().unwrap();
            assert_eq!(id.as_deref(), Some(FRONTIER_ID));
            assert!(
                matches!(first, Response::Progress { .. }),
                "a streamed frontier run leads with Progress: {first:?}"
            );
            let ack = sweeper.cancel(FRONTIER_ID).unwrap();
            let (mut responses, _) = drain_tagged(&mut sweeper, FRONTIER_ID);
            responses.insert(0, first);
            match (&ack, responses.last()) {
                // The cancel landed mid-run: ack'd AND the stream ended
                // with Cancelled in place of the Experiment terminal.
                (Response::Cancelled { .. }, Some(Response::Cancelled { .. })) => {
                    break responses;
                }
                // Too late on either side of the finish line: a finished
                // run is a valid stream, not a test failure — retry.
                (Response::Error { message }, Some(Response::Experiment { .. }))
                    if message.contains(FRONTIER_ID) => {}
                (Response::Cancelled { .. }, Some(Response::Experiment { .. })) => {}
                (ack, terminal) => {
                    panic!("unexpected cancel outcome: ack {ack:?}, terminal {terminal:?}")
                }
            }
            attempts += 1;
            assert!(
                attempts < 20,
                "cancel never landed mid-run in {attempts} attempts"
            );
        }
    };
    let last_progress = responses
        .iter()
        .rev()
        .find_map(|r| match r {
            Response::Progress {
                cells_done,
                cells_total,
            } => Some((*cells_done, *cells_total)),
            _ => None,
        })
        .expect("at least the first progress line was streamed");
    assert!(
        last_progress.0 < last_progress.1,
        "cancellation must stop the search early ({}/{} cells)",
        last_progress.0,
        last_progress.1
    );

    // The grid expansion was consumed as plain design points: the shared
    // policy registry is untouched by the cancelled run.
    assert_eq!(labels_before(&mut prober), before);

    // Analyses completed before the cancellation (the security gadget
    // matrix) stay cached: the repeat request re-analyzes at most the
    // workload itself…
    let misses = |client: &mut Client| -> u64 {
        let responses = client
            .request(&Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["UnsafeBaseline".to_string()],
            })
            .unwrap();
        let Some(Response::Done(summary)) = responses.last() else {
            panic!("expected Done, got {:?}", responses.last());
        };
        summary.cache.misses
    };
    let after_cancel = misses(&mut prober);

    let rerun = |sweeper: &mut Client| -> Vec<Response> {
        sweeper
            .request(&Request::Experiment {
                name: "frontier".to_string(),
                workloads: Vec::new(),
            })
            .unwrap()
    };
    let responses = rerun(&mut sweeper);
    assert!(
        matches!(responses.last(), Some(Response::Experiment { .. })),
        "the repeat frontier run completes: {:?}",
        responses.last()
    );
    let after_first = misses(&mut prober);
    assert!(
        after_first - after_cancel <= 1,
        "repeat after cancel re-analyzes at most the workload \
         ({after_cancel} -> {after_first} misses)"
    );

    // …and a further repeat is pure cache hits.
    let responses = rerun(&mut sweeper);
    assert!(matches!(
        responses.last(),
        Some(Response::Experiment { .. })
    ));
    assert_eq!(
        misses(&mut prober),
        after_first,
        "a repeat frontier run must be served from the analysis cache"
    );

    // The cancelled id is free again.
    let stale = sweeper.cancel(FRONTIER_ID).unwrap();
    assert!(
        matches!(&stale, Response::Error { message } if message.contains(FRONTIER_ID)),
        "{stale:?}"
    );
}

/// A `Cancel` that lands while its target is still *queued* for a pool
/// worker (dispatched, but no worker free yet) is acknowledged with
/// `Cancelled`, and the queued sweep terminates with `Cancelled` without
/// simulating a single cell: ids are registered at dispatch time on the
/// reader thread, not when a worker picks the job up.
#[test]
fn cancel_reaches_a_request_still_queued_for_the_pool() {
    const QUEUED_ID: &str = "queued-sweep";
    // A single worker: the long grid occupies it for seconds, so the
    // second tagged sweep sits in the pool queue the whole time.
    let handle = serve("127.0.0.1:0", EvalService::new(), 1).expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let responses = client
        .request(&Request::Submit {
            spec: WorkloadSpec::Kernel {
                family: "chacha20".to_string(),
                size: 512,
                name: None,
            },
        })
        .unwrap();
    assert!(matches!(responses.last(), Some(Response::Submitted { .. })));

    client
        .send_tagged(
            SWEEP_ID,
            &Request::GridSweep {
                workloads: Vec::new(),
                grid: long_grid(),
            },
        )
        .unwrap();
    // The long sweep is mid-matrix: the single worker is taken.
    let (id, first) = client.recv_tagged().unwrap();
    assert_eq!(id.as_deref(), Some(SWEEP_ID));
    assert!(matches!(first, Response::Record(_)), "{first:?}");

    // Pipeline three more lines on the SAME connection: the reader
    // processes them strictly in order, so the sweep's id is reserved (at
    // dispatch) before its `Cancel` is handled — no sleeps and no
    // side-connection races — while the grid, 95 cells from done, keeps
    // the single worker busy for the microseconds that takes.
    client
        .send_tagged(
            QUEUED_ID,
            &Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["UnsafeBaseline".to_string(), "Cassandra".to_string()],
            },
        )
        .unwrap();
    client
        .send(&Request::Cancel {
            id: QUEUED_ID.to_string(),
        })
        .unwrap();
    client
        .send(&Request::Cancel {
            id: SWEEP_ID.to_string(),
        })
        .unwrap();

    // Drain the interleaved wire: two untagged `Cancel` acks plus both
    // tagged streams' terminals.
    let mut acks = Vec::new();
    let mut streams: std::collections::BTreeMap<String, Vec<Response>> = Default::default();
    let mut open = 2usize;
    while open > 0 || acks.len() < 2 {
        let (id, response) = client.recv_tagged().unwrap();
        match id {
            None => acks.push(response),
            Some(id) => {
                let terminal = response.is_terminal();
                streams.entry(id).or_default().push(response);
                if terminal {
                    open -= 1;
                }
            }
        }
    }

    // The regression pin: before ids were registered at dispatch time,
    // cancelling the still-queued sweep acked with an unknown-id `Error`.
    assert_eq!(
        acks[0],
        Response::Cancelled {
            id: QUEUED_ID.to_string()
        },
        "a queued request must already be cancellable"
    );
    assert_eq!(
        acks[1],
        Response::Cancelled {
            id: SWEEP_ID.to_string()
        }
    );
    assert!(matches!(
        streams[SWEEP_ID].last(),
        Some(Response::Cancelled { .. })
    ));
    assert_eq!(
        streams[QUEUED_ID],
        vec![Response::Cancelled {
            id: QUEUED_ID.to_string()
        }],
        "the queued sweep must terminate with Cancelled and nothing else"
    );
}

/// Two sweeps tagged with the same id cannot be in flight at once; the
/// second is rejected without evaluating anything.
#[test]
fn duplicate_in_flight_ids_are_rejected() {
    let (handle, mut sweeper) = start();
    sweeper
        .send_tagged(
            SWEEP_ID,
            &Request::GridSweep {
                workloads: Vec::new(),
                grid: long_grid(),
            },
        )
        .unwrap();
    let (_, first) = sweeper.recv_tagged().unwrap();
    assert!(matches!(first, Response::Record(_)), "{first:?}");

    // Same id from a second connection while the first is in flight.
    let mut other = Client::connect(handle.addr()).unwrap();
    let responses = other
        .request_tagged(
            SWEEP_ID,
            &Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["Cassandra".to_string()],
            },
        )
        .unwrap();
    assert!(
        matches!(&responses[0], Response::Error { message }
            if message.contains("already in flight")),
        "{responses:?}"
    );

    // Cancel the long sweep so the test exits quickly.
    sweeper.cancel(SWEEP_ID).unwrap();
    let (cancelled, _) = drain_tagged(&mut sweeper, SWEEP_ID);
    assert!(matches!(cancelled.last(), Some(Response::Cancelled { .. })));
}
