//! The TCP front of the evaluation service: a `std::net` listener,
//! per-connection reader/writer threads and a shared request worker pool,
//! with newline-delimited JSON framing.
//!
//! Design constraints (see the crate docs): the build environment is
//! offline, so there is no async runtime — everything is plain blocking
//! `std` threads. Since protocol v3 each connection **pipelines**: a
//! reader thread decodes `RequestEnvelope`s continuously and dispatches
//! each tagged streaming request (`Sweep`, `GridSweep`, `Lint`,
//! `Experiment`) to the shared pool of `threads` request workers, while a
//! per-connection writer thread fairly interleaves the tagged response
//! lines of every in-flight stream onto the socket (round-robin, one line
//! per stream per turn). Each stream feeds the writer through its own
//! bounded queue, so one sweep producing records faster than the wire
//! drains them blocks **its own** worker, never the reader or the other
//! streams. Cheap requests (`Ping`, `Submit`, `Cancel`, shard-sync,
//! `Shutdown`, …) are answered inline on the reader thread, which is why a
//! `Cancel` sent on the same connection stops a sweep ahead of it —
//! whether that sweep is still streaming or still *queued* for a worker
//! (tagged heavy requests register their cancel token at dispatch time,
//! before entering the pool queue). Bare (un-enveloped v1) requests have
//! no id to demultiplex by, so the reader waits for each one's terminal
//! line before decoding the next — one at a time in arrival order,
//! exactly as in v2 — but heavy bare requests still execute on the pool,
//! so `--threads` bounds concurrent simulations for v1 clients too.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] (or a client
//! `Shutdown` request) raises a flag; the accept loop and idle readers
//! notice it within one poll interval, in-flight streams run to
//! completion, and [`ServerHandle::join`] returns with no dangling
//! threads.

use crate::protocol::{self, Request, Response, ResponseEnvelope};
use crate::service::EvalService;
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Per-connection read timeout; bounds how long shutdown can lag a
/// reader thread (a blocking read returns as soon as data arrives, so
/// this never delays a request).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Poll interval of the non-blocking accept loop. Unlike the read
/// timeout, this one is user-visible latency — a fresh connection's
/// first request waits for the next accept poll — so it stays tight.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-write timeout on response frames: a stalled reader costs at most
/// this long per write before its connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Bounded depth of one stream's frame queue between its producing worker
/// and the connection's writer thread. A stream that outruns the wire by
/// this many lines blocks its own sweep (backpressure), not the
/// connection.
const STREAM_QUEUE_CAP: usize = 64;

/// Upper bound on bytes coalesced into one socket write by the writer
/// thread. Batching amortizes syscalls under load without letting one
/// flush starve the queues for long.
const WRITE_BATCH_BYTES: usize = 64 * 1024;

/// The worker-pool size used when the operator does not pass `--threads`:
/// one request worker per hardware thread (`available_parallelism`),
/// falling back to 4 when the parallelism is unknown.
pub fn default_worker_threads() -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server: its bound address plus the shutdown/join controls.
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag; the accept loop and idle connections stop
    /// within one poll interval.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the accept loop and every worker have exited (after
    /// [`ServerHandle::shutdown`] or a client `Shutdown` request).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            handle.join().expect("server accept thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves `service` until shut down. Returns immediately;
/// the listener runs on background threads. `threads` sizes the shared
/// request worker pool that heavy tagged requests (sweeps, lints,
/// experiments) are dispatched to — it bounds concurrent *simulations*,
/// not concurrent connections: every connection gets its own lightweight
/// reader and writer thread, and tagged requests from all connections
/// multiplex over the one pool.
///
/// # Errors
///
/// Propagates socket errors from binding the listener.
pub fn serve(
    addr: impl ToSocketAddrs,
    service: EvalService,
    threads: usize,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let service = Arc::new(service);

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || accept_loop(listener, service, shutdown, threads.max(1)))
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

// ------------------------------------------------------- request pool

/// One unit of pool work: a request handler closure, boxed for the shared
/// mpsc job channel.
type Job = Box<dyn FnOnce() + Send>;

/// The shared request worker pool: heavy tagged requests from every
/// connection funnel into one job queue consumed by `threads` workers.
struct RequestPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl RequestPool {
    fn new(threads: usize) -> Arc<Self> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || pool_worker(&rx))
            })
            .collect();
        Arc::new(RequestPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        })
    }

    /// Enqueues a job; returns it back when the pool is already closed
    /// (shutdown raced the dispatch) so the caller can run it inline.
    fn submit(&self, job: Job) -> Result<(), Job> {
        match lock(&self.tx).as_ref() {
            Some(tx) => tx.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }

    /// Closes the job queue and joins the workers (in-flight jobs run to
    /// completion).
    fn close(&self) {
        lock(&self.tx).take();
        let workers = std::mem::take(&mut *lock(&self.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

fn pool_worker(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Holding the lock across recv is fine: exactly one idle worker
        // waits on the channel, the rest queue on the mutex.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                // A panicking request must not shrink the shared pool for
                // the rest of the server's lifetime: contain the unwind
                // and keep the worker serving. (The job's stream handle
                // drops during the unwind, so its response stream closes.)
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                    eprintln!(
                        "cassandra-server: a request job panicked; \
                         its worker keeps serving"
                    );
                }
            }
            Err(_) => return, // Channel closed: the server is shutting down.
        }
    }
}

// --------------------------------------------------- connection writer

/// One in-flight response stream's slot in the connection writer: its
/// bounded frame queue plus whether the producing request is still
/// running.
struct MuxStream {
    token: u64,
    queue: VecDeque<String>,
    open: bool,
}

/// Shared state of one connection's writer thread: the active streams in
/// open order plus the round-robin cursor.
struct MuxState {
    streams: Vec<MuxStream>,
    next_slot: usize,
    next_token: u64,
    /// The reader is gone (EOF or shutdown): the writer exits once every
    /// stream has closed and drained.
    reader_done: bool,
    /// The socket is gone (write error/timeout): producers stop blocking
    /// and get an error instead.
    dead: bool,
}

/// The per-connection response multiplexer: producers push encoded frames
/// into per-stream bounded queues, the writer thread drains them onto the
/// socket with a fair round-robin interleave.
struct MuxWriter {
    state: Mutex<MuxState>,
    /// Writer waits here for frames (or closure).
    frames: Condvar,
    /// Producers wait here for queue space.
    space: Condvar,
}

impl MuxWriter {
    fn new() -> Arc<Self> {
        Arc::new(MuxWriter {
            state: Mutex::new(MuxState {
                streams: Vec::new(),
                next_slot: 0,
                next_token: 0,
                reader_done: false,
                dead: false,
            }),
            frames: Condvar::new(),
            space: Condvar::new(),
        })
    }

    /// Opens a new stream slot and returns its producer handle.
    fn open_stream(self: &Arc<Self>) -> StreamHandle {
        let mut state = lock(&self.state);
        let token = state.next_token;
        state.next_token += 1;
        state.streams.push(MuxStream {
            token,
            queue: VecDeque::new(),
            open: true,
        });
        StreamHandle {
            mux: Arc::clone(self),
            token,
        }
    }

    /// Marks the reader as gone; the writer exits once the remaining
    /// streams finish.
    fn reader_done(&self) {
        lock(&self.state).reader_done = true;
        self.frames.notify_all();
    }
}

/// A producer's handle on its stream slot: pushes frames with per-stream
/// backpressure and closes the slot on drop (every exit path of the
/// request handler, including panics inside the pool job).
struct StreamHandle {
    mux: Arc<MuxWriter>,
    token: u64,
}

impl StreamHandle {
    /// Enqueues one encoded response line, blocking while this stream's
    /// queue is full.
    ///
    /// # Errors
    ///
    /// Fails with `BrokenPipe` once the connection's socket has died, so
    /// an abandoned sweep stops simulating instead of streaming into the
    /// void.
    fn push(&self, frame: String) -> io::Result<()> {
        let mut state = lock(&self.mux.state);
        loop {
            if state.dead {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "connection writer closed",
                ));
            }
            let Some(stream) = state.streams.iter_mut().find(|s| s.token == self.token) else {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "response stream closed",
                ));
            };
            if stream.queue.len() < STREAM_QUEUE_CAP {
                stream.queue.push_back(frame);
                self.mux.frames.notify_all();
                return Ok(());
            }
            state = self
                .mux
                .space
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        let mut state = lock(&self.mux.state);
        if let Some(stream) = state.streams.iter_mut().find(|s| s.token == self.token) {
            stream.open = false;
        }
        self.mux.frames.notify_all();
    }
}

/// The connection's writer thread: round-robins one frame per non-empty
/// stream per turn (fair interleave), coalescing up to
/// [`WRITE_BATCH_BYTES`] per socket write. Exits when the socket dies or
/// when the reader is done and every stream has closed and drained.
/// Fills `batch` with frames from the streams' queues: repeated
/// round-robin cycles taking at most one frame per stream per cycle (the
/// fair interleave), until the batch reaches [`WRITE_BATCH_BYTES`] or
/// every queue is empty. `state.next_slot` resumes after the last slot
/// served, so fairness carries across batches too.
fn fill_batch(state: &mut MuxState, batch: &mut String) {
    let n = state.streams.len();
    let mut took = true;
    while took && batch.len() < WRITE_BATCH_BYTES {
        took = false;
        // Snapshot the cursor for this cycle: it must visit every stream
        // exactly once even as taking a frame advances the cursor
        // (iterating from the live cursor skips slots — with three ready
        // streams the serve order degenerated to 0,2,2,… and starved
        // slot 1 indefinitely).
        let base = state.next_slot;
        for step in 0..n {
            let slot = (base + step) % n;
            if let Some(frame) = state.streams[slot].queue.pop_front() {
                batch.push_str(&frame);
                batch.push('\n');
                state.next_slot = (slot + 1) % n;
                took = true;
                if batch.len() >= WRITE_BATCH_BYTES {
                    return;
                }
            }
        }
    }
}

fn writer_loop(mut socket: TcpStream, mux: &MuxWriter) {
    let mut batch = String::new();
    loop {
        batch.clear();
        {
            let mut state = lock(&mux.state);
            loop {
                if state.dead {
                    return;
                }
                // Retire streams whose producer finished and whose queue
                // has drained.
                state.streams.retain(|s| s.open || !s.queue.is_empty());
                if state.streams.is_empty() && state.reader_done {
                    return;
                }
                fill_batch(&mut state, &mut batch);
                if !batch.is_empty() {
                    break;
                }
                state = mux
                    .frames
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Queue space freed: wake blocked producers before the write so
        // they refill while the syscall runs.
        mux.space.notify_all();
        if socket.write_all(batch.as_bytes()).is_err() {
            lock(&mux.state).dead = true;
            mux.frames.notify_all();
            mux.space.notify_all();
            return;
        }
    }
}

// ---------------------------------------------------------- accept loop

fn accept_loop(
    listener: TcpListener,
    service: Arc<EvalService>,
    shutdown: Arc<AtomicBool>,
    threads: usize,
) {
    let pool = RequestPool::new(threads);
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let pool = Arc::clone(&pool);
                readers.push(thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &shutdown, &pool);
                }));
                // Reap finished connections so a long-lived server does
                // not accumulate joined-but-unreclaimed handles.
                readers.retain(|r| !r.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
    // Let in-flight requests finish, then the connection threads drain
    // their writers and exit (their readers notice the shutdown flag
    // within one poll interval).
    pool.close();
    for reader in readers {
        let _ = reader.join();
    }
}

/// True for requests answered inline on the connection's reader thread:
/// everything that neither simulates nor analyzes, so the reader stays
/// responsive (this is what lets a same-connection `Cancel` stop a sweep
/// that is still streaming). Streaming/heavy requests go to the pool.
fn runs_inline(request: &Request) -> bool {
    matches!(
        request,
        Request::Ping
            | Request::ListPolicies
            | Request::ListWorkloads
            | Request::Submit { .. }
            | Request::Cancel { .. }
            | Request::SnapshotShard { .. }
            | Request::AbsorbSnapshot { .. }
            | Request::Shutdown
    )
}

/// Encodes one response line in the request's framing: enveloped requests
/// get every line wrapped with their id, bare requests get bare lines.
fn encode_frame(id: Option<&str>, response: Response) -> String {
    match id {
        Some(id) => protocol::encode(&ResponseEnvelope {
            id: id.to_string(),
            response,
        }),
        None => protocol::encode(&response),
    }
}

/// Serves one client connection (the reader half): decodes requests
/// continuously, answering cheap ones inline and dispatching tagged
/// streaming ones to the request pool, while the spawned writer thread
/// interleaves all response streams onto the socket. See the module docs
/// for the full pipelining contract.
fn handle_connection(
    stream: TcpStream,
    service: &Arc<EvalService>,
    shutdown: &AtomicBool,
    pool: &RequestPool,
) -> io::Result<()> {
    // BSD-derived platforms let accepted sockets inherit the listener's
    // non-blocking mode; force blocking so the read timeout below governs
    // the idle poll instead of a busy WouldBlock spin.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // Bound writes so a client that stops reading mid-stream errors this
    // connection out instead of blocking its writer thread forever on a
    // full send buffer.
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let socket = stream.try_clone()?;
    let mux = MuxWriter::new();
    let writer = {
        let mux = Arc::clone(&mux);
        thread::spawn(move || writer_loop(socket, &mux))
    };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let result = loop {
        match reader.read_line(&mut line) {
            Ok(0) => break Ok(()), // EOF: client hung up.
            Ok(_) => {
                let taken = std::mem::take(&mut line);
                let trimmed = taken.trim();
                if !trimmed.is_empty() {
                    if let Err(e) = serve_line(trimmed, service, shutdown, pool, &mux) {
                        break Err(e);
                    }
                    if shutdown.load(Ordering::Relaxed) {
                        break Ok(());
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll; `line` keeps any partial read. Stop waiting for
                // more input once shutdown is raised.
                if shutdown.load(Ordering::Relaxed) {
                    break Ok(());
                }
            }
            Err(e) => break Err(e),
        }
    };
    // In-flight pool streams keep the writer alive until they finish;
    // joining it here keeps the connection's thread accounting exact.
    mux.reader_done();
    let _ = writer.join();
    result
}

/// Routes one decoded request line: inline on this thread, or onto the
/// pool with its own response stream. `Err` means the connection is dead
/// (mux closed under us) — request-level failures become `Error` frames.
fn serve_line(
    line: &str,
    service: &Arc<EvalService>,
    shutdown: &AtomicBool,
    pool: &RequestPool,
    mux: &Arc<MuxWriter>,
) -> io::Result<()> {
    match protocol::decode_request(line) {
        Ok((id, request)) => {
            // Cheap requests run inline on the reader thread, tagged or
            // bare: dispatching them behind queued sweeps would cost
            // responsiveness for no concurrency win (and the inline
            // `Cancel` is what stops sweeps streaming ahead of it on the
            // same connection).
            if runs_inline(&request) {
                let is_shutdown = matches!(request, Request::Shutdown);
                let handle = mux.open_stream();
                let id = id.as_deref();
                let mut sink = |response: Response| handle.push(encode_frame(id, response));
                service.handle_tagged(id, request, &mut sink)?;
                if is_shutdown {
                    shutdown.store(true, Ordering::Relaxed);
                }
                return Ok(());
            }
            let Some(id) = id else {
                // Bare (v1) heavy request: no id to demultiplex response
                // lines by, so the reader waits for its terminal line
                // before decoding the next request — the v1 lockstep
                // contract — but the work itself still runs on the pool,
                // so `--threads` bounds concurrent simulations for v1
                // clients too.
                let handle = mux.open_stream();
                let service = Arc::clone(service);
                let (done_tx, done_rx) = mpsc::channel();
                let job: Job = Box::new(move || {
                    let mut sink = |response: Response| handle.push(encode_frame(None, response));
                    let _ = done_tx.send(service.handle(request, &mut sink));
                });
                if let Err(job) = pool.submit(job) {
                    // Shutdown raced the dispatch: serve the request
                    // inline rather than dropping it on the floor.
                    job();
                }
                // The pool runs queued jobs to completion even during
                // shutdown, so the result always arrives; a disconnect
                // means the job panicked (logged by its worker).
                return done_rx.recv().unwrap_or(Ok(()));
            };
            // Tagged heavy request: reserve the id *before* the request
            // enters the pool queue, so a `Cancel` racing the queue
            // already finds the token — the job then starts pre-cancelled
            // and terminates with `Cancelled` without simulating.
            let handle = mux.open_stream();
            let reservation = match service.reserve(&id) {
                Ok(reservation) => reservation,
                Err(message) => {
                    return handle.push(encode_frame(Some(&id), Response::Error { message }))
                }
            };
            let service = Arc::clone(service);
            let job: Job = Box::new(move || {
                let mut sink = |response: Response| {
                    handle.push(encode_frame(Some(reservation.id()), response))
                };
                // Sink errors mean the client is gone; the stream closes
                // (handle drops) and there is nobody to report to.
                let _ = service.handle_reserved(&reservation, request, &mut sink);
            });
            if let Err(job) = pool.submit(job) {
                // Shutdown raced the dispatch: serve the request inline
                // rather than dropping it on the floor.
                job();
            }
            Ok(())
        }
        Err(e) => {
            let handle = mux.open_stream();
            handle.push(encode_frame(
                None,
                Response::Error {
                    message: format!("invalid request: {e}"),
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(queues: &[Vec<String>]) -> MuxState {
        MuxState {
            streams: queues
                .iter()
                .enumerate()
                .map(|(i, frames)| MuxStream {
                    token: i as u64,
                    queue: frames.iter().cloned().collect(),
                    open: true,
                })
                .collect(),
            next_slot: 0,
            next_token: queues.len() as u64,
            reader_done: false,
            dead: false,
        }
    }

    fn frames(prefix: &str, count: usize) -> Vec<String> {
        (0..count).map(|i| format!("{prefix}{i}")).collect()
    }

    #[test]
    fn fill_batch_interleaves_three_streams_one_frame_per_turn() {
        let mut state = state_with(&[frames("a", 2), frames("b", 2), frames("c", 2)]);
        let mut batch = String::new();
        fill_batch(&mut state, &mut batch);
        assert_eq!(batch, "a0\nb0\nc0\na1\nb1\nc1\n");
        assert_eq!(state.next_slot, 0, "the cursor resumes after the last slot");
    }

    /// Regression: iterating the round-robin cycle from the *live* cursor
    /// (which advances as frames are taken) instead of a per-cycle
    /// snapshot degenerates three always-ready streams into the serve
    /// pattern 0,2,2,… — stream 1 is starved for as long as the other two
    /// keep their queues non-empty. With frames large enough that a batch
    /// fills mid-cycle (the steady state under load) and queues refilled
    /// between batches (producers waking on freed space), every stream
    /// must drain at the same rate.
    #[test]
    fn fill_batch_starves_no_stream_across_batches() {
        // Each frame is ~30 KiB, so one 64 KiB batch holds three frames.
        let frame = |slot: usize| format!("s{slot}{}", "x".repeat(30_000));
        let mut state = state_with(&[Vec::new(), Vec::new(), Vec::new()]);
        let mut served = [0usize; 3];
        for _batch in 0..32 {
            for stream in &mut state.streams {
                let slot = stream.token as usize;
                while stream.queue.len() < 2 {
                    stream.queue.push_back(frame(slot));
                }
            }
            let mut batch = String::new();
            fill_batch(&mut state, &mut batch);
            for line in batch.lines() {
                let slot = usize::from(line.as_bytes()[1] - b'0');
                served[slot] += 1;
            }
        }
        assert!(
            served[0] == served[1] && served[1] == served[2],
            "unfair round-robin: {served:?}"
        );
    }

    /// A panicking job is contained by its worker: the pool keeps serving
    /// subsequent jobs instead of silently shrinking.
    #[test]
    fn pool_worker_survives_a_panicking_job() {
        let pool = RequestPool::new(1);
        assert!(pool.submit(Box::new(|| panic!("job panic"))).is_ok());
        let (tx, rx) = mpsc::channel();
        assert!(pool
            .submit(Box::new(move || tx.send(()).expect("receiver alive")))
            .is_ok());
        rx.recv_timeout(Duration::from_secs(10))
            .expect("the single worker must survive the panic and run the next job");
        pool.close();
    }
}
