//! The TCP front of the evaluation service: a `std::net` listener, a fixed
//! worker-thread pool and per-connection newline-delimited JSON framing.
//!
//! Design constraints (see the crate docs): the build environment is
//! offline, so there is no async runtime — the server is a plain blocking
//! accept loop handing connections to `threads` workers over an mpsc
//! channel. The [`EvalService`] is internally synchronized (`&self`
//! handlers, each shared table behind its own lock, one thread-safe
//! analysis store), so workers serve their connections **concurrently**: a
//! long `GridSweep` on one connection — itself simulating its design matrix
//! on all cores — never delays a `Ping` or `ListPolicies` on another, and a
//! `Cancel` naming an in-flight request's id stops that sweep mid-matrix.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] (or a client
//! `Shutdown` request) raises a flag; the accept loop polls it between
//! non-blocking accepts and idle connections notice it through their read
//! timeout, so [`ServerHandle::join`] returns promptly with no dangling
//! threads.

use crate::protocol::{self, Request, Response, ResponseEnvelope};
use crate::service::EvalService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Poll interval of the non-blocking accept loop and the per-connection
/// read timeout; bounds how long shutdown can lag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Per-write timeout on response frames: a stalled reader costs at most
/// this long per write before its connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A running server: its bound address plus the shutdown/join controls.
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag; the accept loop and idle connections stop
    /// within one poll interval.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the accept loop and every worker have exited (after
    /// [`ServerHandle::shutdown`] or a client `Shutdown` request).
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            handle.join().expect("server accept thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves `service` on a pool of `threads` connection
/// workers until shut down. Returns immediately; the listener runs on
/// background threads. Each worker owns one connection at a time and
/// requests run concurrently across workers (the service is internally
/// synchronized), so `threads` bounds both concurrent connections and
/// concurrent requests.
///
/// # Errors
///
/// Propagates socket errors from binding the listener.
pub fn serve(
    addr: impl ToSocketAddrs,
    service: EvalService,
    threads: usize,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let service = Arc::new(service);

    let accept = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || accept_loop(listener, service, shutdown, threads.max(1)))
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<EvalService>,
    shutdown: Arc<AtomicBool>,
    threads: usize,
) {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || worker_loop(&rx, &service, &shutdown))
        })
        .collect();

    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Send only fails once every worker is gone; stop accepting.
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => break,
        }
    }
    drop(tx); // Unblocks workers waiting on the channel.
    for worker in workers {
        let _ = worker.join();
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, service: &EvalService, shutdown: &AtomicBool) {
    loop {
        // Holding the lock across recv is fine: exactly one idle worker
        // waits on the channel, the rest queue on the mutex.
        let stream = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match stream {
            Ok(stream) => {
                let _ = handle_connection(stream, service, shutdown);
            }
            Err(_) => return, // Channel closed: the server is shutting down.
        }
    }
}

/// Serves one client connection: reads one request per line, streams the
/// response lines, keeps the connection open across requests. Requests on
/// *other* connections proceed in parallel on their own workers; within one
/// connection, requests are sequential (issue a `Cancel` from a second
/// connection to stop a sweep that is still streaming here).
fn handle_connection(
    stream: TcpStream,
    service: &EvalService,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // BSD-derived platforms let accepted sockets inherit the listener's
    // non-blocking mode; force blocking so the read timeout below governs
    // the idle poll instead of a busy WouldBlock spin.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // Bound writes so a client that stops reading mid-stream errors this
    // connection out instead of blocking a worker forever on a full send
    // buffer.
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF: client hung up.
            Ok(_) => {
                let taken = std::mem::take(&mut line);
                let trimmed = taken.trim();
                if !trimmed.is_empty() {
                    serve_request(trimmed, service, shutdown, &mut writer)?;
                    if shutdown.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll; `line` keeps any partial read. Stop waiting for
                // more input once shutdown is raised.
                if shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_request(
    line: &str,
    service: &EvalService,
    shutdown: &AtomicBool,
    writer: &mut TcpStream,
) -> io::Result<()> {
    match protocol::decode_request(line) {
        Ok((id, request)) => {
            let is_shutdown = matches!(request, Request::Shutdown);
            // Echo the request's framing: enveloped requests get every
            // response line wrapped with their id, bare requests get bare
            // lines.
            let mut sink = |response: Response| match &id {
                Some(id) => write_line(
                    writer,
                    protocol::encode(&ResponseEnvelope {
                        id: id.clone(),
                        response,
                    }),
                ),
                None => write_line(writer, protocol::encode(&response)),
            };
            service.handle_tagged(id.as_deref(), request, &mut sink)?;
            if is_shutdown {
                shutdown.store(true, Ordering::Relaxed);
            }
            Ok(())
        }
        Err(e) => write_line(
            writer,
            protocol::encode(&Response::Error {
                message: format!("invalid request: {e}"),
            }),
        ),
    }
}

fn write_line(writer: &mut TcpStream, mut frame: String) -> io::Result<()> {
    frame.push('\n');
    writer.write_all(frame.as_bytes())?;
    writer.flush()
}
