//! # cassandra-server
//!
//! The batch evaluation service of the Cassandra reproduction: a
//! long-running, **pipelined** TCP server holding one [`EvalService`]
//! session around one thread-safe, fingerprint-range-sharded
//! [`cassandra_core::eval::AnalysisStore`], so the fingerprint-memoized
//! Algorithm-2 analyses are shared across every client and request — the
//! expensive half of an evaluation runs once per distinct program for the
//! server's whole lifetime — while tagged requests are multiplexed even
//! on a single connection (a long sweep never delays a `Ping`, and two
//! sweeps on one socket interleave their streams fairly).
//!
//! The environment is fully offline, so the transport is deliberately
//! boring: `std::net` sockets, per-connection reader/writer threads over
//! a shared worker pool (see [`server::default_worker_threads`]), and
//! newline-delimited JSON framed with the vendored `serde_json` shim. The
//! wire format is documented message-by-message in `docs/PROTOCOL.md`;
//! requests cover session introspection (`Ping`, `ListPolicies`,
//! `ListWorkloads`), workload ingestion (`Submit`), design-matrix
//! evaluation (`Sweep`), grid expansion over the policy-parameterised
//! knobs (`GridSweep`, built on [`cassandra_core::policies::GridSweep`]),
//! per-request cancellation (`Cancel`, addressing the client-supplied
//! id of an in-flight request; see [`RequestEnvelope`]) and shard
//! exchange between server processes (`SnapshotShard`/`AbsorbSnapshot`,
//! driven by the example's `shard-sync` subcommand). Sweep responses
//! stream one `EvalRecord` per line as cells complete, interleaved with
//! `Progress` lines, and close with a summary carrying the session's
//! cache counters and the same plain-text report offline `Experiment`
//! runs render — or with `Cancelled`, after which no further records
//! follow. [`EvalService::with_cache_file`] journals completed analyses
//! incrementally, so even a crashed server restarts warm.
//!
//! ```
//! use cassandra_server::{serve, Client, EvalService, Request, Response};
//!
//! let handle = serve("127.0.0.1:0", EvalService::new(), 2)?;
//! let mut client = Client::connect(handle.addr())?;
//! let responses = client.request(&Request::Ping)?;
//! assert!(matches!(responses[0], Response::Pong { .. }));
//! client.request(&Request::Shutdown)?;
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use protocol::{
    GridSpec, Request, RequestEnvelope, Response, ResponseEnvelope, SweepSummary, WorkloadSpec,
    PROTOCOL_VERSION,
};
pub use server::{default_worker_threads, serve, ServerHandle};
pub use service::EvalService;
