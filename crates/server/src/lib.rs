//! # cassandra-server
//!
//! The batch evaluation service of the Cassandra reproduction: a
//! long-running TCP server holding **one** [`EvalService`] session, so the
//! fingerprint-memoized Algorithm-2 analyses of
//! [`cassandra_core::eval::Evaluator`] are shared across every client and
//! request — the expensive half of an evaluation runs once per distinct
//! program for the server's whole lifetime.
//!
//! The environment is fully offline, so the transport is deliberately
//! boring: `std::net` sockets, a fixed worker-thread pool, and
//! newline-delimited JSON framed with the vendored `serde_json` shim. The
//! wire format is documented message-by-message in `docs/PROTOCOL.md`;
//! requests cover session introspection (`Ping`, `ListPolicies`,
//! `ListWorkloads`), workload ingestion (`Submit`), design-matrix
//! evaluation (`Sweep`) and grid expansion over the policy-parameterised
//! knobs (`GridSweep`, built on [`cassandra_core::policies::GridSweep`]).
//! Sweep responses stream one `EvalRecord` per line and close with a
//! summary carrying the session's cache counters and the same plain-text
//! report offline `Experiment` runs render.
//!
//! ```
//! use cassandra_server::{serve, Client, EvalService, Request, Response};
//!
//! let handle = serve("127.0.0.1:0", EvalService::new(), 2)?;
//! let mut client = Client::connect(handle.addr())?;
//! let responses = client.request(&Request::Ping)?;
//! assert!(matches!(responses[0], Response::Pong { .. }));
//! client.request(&Request::Shutdown)?;
//! handle.join();
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use protocol::{GridSpec, Request, Response, SweepSummary, WorkloadSpec, PROTOCOL_VERSION};
pub use server::{serve, ServerHandle};
pub use service::EvalService;
