//! A small blocking client for the wire protocol, used by the `connect`
//! subcommand of the example driver and by the loopback tests.

use crate::protocol::{self, Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One client connection. Requests are synchronous: send a line, then read
/// response lines until the terminal one (see [`Response::is_terminal`]).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request line without waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        self.send_raw(&protocol::encode(request))
    }

    /// Sends a raw line (no validation — this is how the tests exercise the
    /// server's error envelope).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server hung up, `InvalidData` on an
    /// unparseable response, and propagated socket errors otherwise.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        protocol::decode(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Sends one request and collects its full response stream (zero or
    /// more `Record`s followed by one terminal response).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn request(&mut self, request: &Request) -> io::Result<Vec<Response>> {
        self.send(request)?;
        self.collect_stream()
    }

    /// Sends a raw line and collects its full response stream.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send_raw`] / [`Client::recv`] errors.
    pub fn request_raw(&mut self, line: &str) -> io::Result<Vec<Response>> {
        self.send_raw(line)?;
        self.collect_stream()
    }

    fn collect_stream(&mut self) -> io::Result<Vec<Response>> {
        let mut responses = Vec::new();
        loop {
            let response = self.recv()?;
            let terminal = response.is_terminal();
            responses.push(response);
            if terminal {
                return Ok(responses);
            }
        }
    }
}
