//! A small blocking client for the wire protocol, used by the `connect`
//! subcommand of the example driver and by the loopback tests.

use crate::protocol::{self, Request, RequestEnvelope, Response};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// One client connection. Requests are synchronous: send a line, then read
/// response lines until the terminal one (see [`Response::is_terminal`]).
///
/// Tagged requests ([`Client::request_tagged`]) carry a client-chosen id
/// the server echoes on every response line; while such a request is in
/// flight — for example, while this connection is still reading a sweep's
/// record stream — [`Client::cancel`] stops it from a second, short-lived
/// connection.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            addr,
            reader,
            writer: stream,
        })
    }

    /// The server address this client is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request line without waiting for the response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        self.send_raw(&protocol::encode(request))
    }

    /// Sends one request wrapped in a [`RequestEnvelope`] carrying `id`,
    /// without waiting for the response. The server echoes `id` on every
    /// line of this request's stream, and `id` becomes the handle
    /// [`Client::cancel`] takes while the request is in flight.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_tagged(&mut self, id: &str, request: &Request) -> io::Result<()> {
        self.send_raw(&protocol::encode(&RequestEnvelope {
            id: id.to_string(),
            request: request.clone(),
        }))
    }

    /// Sends a raw line (no validation — this is how the tests exercise the
    /// server's error envelope).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line, in either framing; enveloped lines
    /// yield their id.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the server hung up, `InvalidData` on an
    /// unparseable response, and propagated socket errors otherwise.
    pub fn recv_tagged(&mut self) -> io::Result<(Option<String>, Response)> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        protocol::decode_response(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })
    }

    /// Reads the next response line, discarding any envelope id.
    ///
    /// # Errors
    ///
    /// See [`Client::recv_tagged`].
    pub fn recv(&mut self) -> io::Result<Response> {
        self.recv_tagged().map(|(_, response)| response)
    }

    /// Sends one request and collects its full response stream (zero or
    /// more `Record`s followed by one terminal response).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn request(&mut self, request: &Request) -> io::Result<Vec<Response>> {
        self.send(request)?;
        self.collect_stream(None)
    }

    /// Sends one id-tagged request and collects its full response stream,
    /// verifying the server echoes the id on every line.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send_tagged`] / [`Client::recv_tagged`] errors;
    /// `InvalidData` if a response line carries a different id.
    pub fn request_tagged(&mut self, id: &str, request: &Request) -> io::Result<Vec<Response>> {
        self.send_tagged(id, request)?;
        self.collect_stream(Some(id))
    }

    /// Sends a raw line and collects its full response stream.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send_raw`] / [`Client::recv`] errors.
    pub fn request_raw(&mut self, line: &str) -> io::Result<Vec<Response>> {
        self.send_raw(line)?;
        self.collect_stream(None)
    }

    /// Collects the interleaved streams of several in-flight tagged
    /// requests on this connection (sent earlier with
    /// [`Client::send_tagged`], each with a distinct id), routing every
    /// response line to its stream by the echoed id. Returns once every
    /// listed stream has received its terminal response; within one id the
    /// lines arrive in order, but the server interleaves streams freely
    /// (protocol v3 pipelining).
    ///
    /// # Errors
    ///
    /// Propagates [`Client::recv_tagged`] errors; `InvalidData` if a line
    /// carries an id not in `ids` or a finished stream receives another
    /// line.
    pub fn collect_multiplexed(
        &mut self,
        ids: &[&str],
    ) -> io::Result<BTreeMap<String, Vec<Response>>> {
        let mut streams: BTreeMap<String, Vec<Response>> = ids
            .iter()
            .map(|id| ((*id).to_string(), Vec::new()))
            .collect();
        let mut open: Vec<String> = streams.keys().cloned().collect();
        while !open.is_empty() {
            let (id, response) = self.recv_tagged()?;
            let id = id.unwrap_or_default();
            if !open.contains(&id) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unexpected or finished stream {id:?}"),
                ));
            }
            let terminal = response.is_terminal();
            streams
                .get_mut(&id)
                .expect("open ids are stream keys")
                .push(response);
            if terminal {
                open.retain(|open_id| *open_id != id);
            }
        }
        Ok(streams)
    }

    /// Cancels the in-flight request tagged `id` — over a **fresh**
    /// connection, so it works while this one is mid-stream — and returns
    /// the server's terminal answer ([`Response::Cancelled`] on success,
    /// [`Response::Error`] if no such request is in flight). The cancelled
    /// request's own stream still terminates on this connection, with
    /// `Cancelled` instead of `Done`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the side connection.
    pub fn cancel(&self, id: &str) -> io::Result<Response> {
        let mut side = Client::connect(self.addr)?;
        let responses = side.request(&Request::Cancel { id: id.to_string() })?;
        responses.into_iter().last().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "empty response stream to Cancel",
            )
        })
    }

    fn collect_stream(&mut self, expect_id: Option<&str>) -> io::Result<Vec<Response>> {
        let mut responses = Vec::new();
        loop {
            let (id, response) = self.recv_tagged()?;
            if let Some(expected) = expect_id {
                if id.as_deref() != Some(expected) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {id:?} does not match request id `{expected}`"),
                    ));
                }
            }
            let terminal = response.is_terminal();
            responses.push(response);
            if terminal {
                return Ok(responses);
            }
        }
    }
}
