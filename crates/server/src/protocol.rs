//! The wire protocol: request/response types, request-id envelopes and
//! newline-delimited JSON framing.
//!
//! Every message is one JSON value on one line (`\n`-terminated, no
//! newlines inside a message — the vendored `serde_json` never emits them
//! in compact mode). Requests and responses are externally tagged serde
//! enums: unit variants are bare JSON strings (`"Ping"`), data variants are
//! single-entry objects (`{"Submit": {...}}`). The full format, with a
//! literal example per message type, is documented in `docs/PROTOCOL.md`.
//!
//! Since protocol v2 a request may carry a client-supplied **id** by
//! wrapping itself in a [`RequestEnvelope`]
//! (`{"id":"sweep-1","request":{...}}`); the server then echoes that id in
//! a [`ResponseEnvelope`] around **every** line of the response stream, and
//! the id becomes a handle for [`Request::Cancel`]. Bare (un-enveloped)
//! requests keep working exactly as in v1 and get bare responses, so the
//! two framings never mix within one request's stream.
//!
//! Since protocol v3 **enveloped requests pipeline**: a client may send any
//! number of tagged requests on one connection without waiting for earlier
//! response streams to finish, and the server interleaves the streams
//! line-by-line (the id on every line is what demultiplexes them). Within
//! one id the line order is unchanged from v2; bare v1 requests are still
//! served one at a time in arrival order. v3 also adds the shard-sync pair
//! ([`Request::SnapshotShard`] / [`Request::AbsorbSnapshot`]) for moving
//! analysis-store shards between server processes.
//!
//! Wire-level strings name things the way the CLI does: defense design
//! points by their [`DefenseMode::label`] (`"Cassandra-part"`, not the Rust
//! variant name) and workloads by their paper name (`"ChaCha20_ct"`).

use cassandra_core::eval::{AnalysisSnapshot, CacheStats, EvalRecord};
use cassandra_core::lint::LintRow;
use cassandra_core::policies::GridSweep;
use cassandra_core::registry::ExperimentOutput;
use cassandra_cpu::config::DefenseMode;
use serde::{Deserialize, Serialize};

/// Protocol revision reported by [`Response::Pong`]; bumped on breaking wire
/// changes. v2 added request-id envelopes, `Cancel` and `Cancelled` (v1
/// bare framing still decodes). The static-analysis `Lint`/`LintReport`
/// pair is a purely additive v2 extension — old clients never see it, so
/// the revision is unchanged. v3 lifts the one-request-at-a-time-per-
/// connection restriction (enveloped requests pipeline and their response
/// streams interleave — a behavioral change old clients can observe, hence
/// the bump) and adds the `SnapshotShard`/`AbsorbSnapshot` shard-sync pair.
pub const PROTOCOL_VERSION: u32 = 3;

/// How a [`Request::Submit`] names the workload to ingest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A named program from the paper's evaluation suite
    /// (`cassandra_kernels::suite::full_suite`), e.g. `"ChaCha20_ct"`,
    /// `"kyber512"`, `"RSA_i62"`.
    Suite {
        /// The suite workload name (Table-1 spelling).
        name: String,
    },
    /// A kernel family instantiated at a given size, optionally renamed.
    Kernel {
        /// Kernel family id: `chacha20`, `sha256`, `aes128`, `des`,
        /// `poly1305`, `modexp`, `x25519`, `kyber` or `sphincs`.
        family: String,
        /// Input size (stream/message bytes, or block count for `des`);
        /// ignored by the fixed-shape families (`modexp`, `x25519`,
        /// `kyber`, `sphincs`).
        size: u64,
        /// Optional name for the ingested workload (defaults to the
        /// family's suite name).
        name: Option<String>,
    },
}

/// The wire form of a [`GridSweep`]: defense design points are named by
/// label and every axis is listed explicitly (empty = keep the Table-3
/// baseline value for that knob).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// Base defense labels (`"Cassandra"`, `"Tournament"`, …), parsed with
    /// [`DefenseMode`]'s `FromStr`. Must be non-empty.
    pub defenses: Vec<String>,
    /// Tournament promotion-threshold axis.
    pub tournament_thresholds: Vec<u32>,
    /// BTU partition-count axis.
    pub btu_partitions: Vec<usize>,
    /// BTU entry-count axis.
    pub btu_entries: Vec<usize>,
    /// Trace Cache miss-penalty axis (cycles).
    pub miss_penalties: Vec<u64>,
    /// Mispredict redirect-penalty axis (cycles).
    pub redirect_penalties: Vec<u64>,
}

impl GridSpec {
    /// Parses the defense labels and builds the typed grid.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an empty defense list or an
    /// unknown label.
    pub fn to_grid(&self) -> Result<GridSweep, String> {
        if self.defenses.is_empty() {
            return Err("GridSweep requires at least one defense label".to_string());
        }
        let defenses: Vec<DefenseMode> = self
            .defenses
            .iter()
            .map(|label| label.parse::<DefenseMode>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        Ok(GridSweep::over(defenses)
            .tournament_thresholds(self.tournament_thresholds.iter().copied())
            .btu_partitions(self.btu_partitions.iter().copied())
            .btu_entries(self.btu_entries.iter().copied())
            .miss_penalties(self.miss_penalties.iter().copied())
            .redirect_penalties(self.redirect_penalties.iter().copied()))
    }
}

/// One client request (one line on the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version check. → [`Response::Pong`].
    Ping,
    /// Enumerate the registered design points. → [`Response::Policies`].
    ListPolicies,
    /// Enumerate the ingested workloads. → [`Response::Workloads`].
    ListWorkloads,
    /// Ingest a workload into the session. → [`Response::Submitted`].
    Submit {
        /// What to ingest.
        spec: WorkloadSpec,
    },
    /// Evaluate workloads × registered policies. → a stream of
    /// [`Response::Record`] followed by [`Response::Done`].
    Sweep {
        /// Submitted workload names; empty = every submitted workload.
        workloads: Vec<String>,
        /// Registered policy labels; empty = every registered policy.
        policies: Vec<String>,
    },
    /// Expand a parameter grid into design points (registered into the
    /// session's policy registry) and evaluate workloads × grid. → a stream
    /// of [`Response::Record`] followed by [`Response::Done`].
    GridSweep {
        /// Submitted workload names; empty = every submitted workload.
        workloads: Vec<String>,
        /// The grid specification.
        grid: GridSpec,
    },
    /// Statically lint workloads with the constant-time &
    /// speculative-leakage analyzer — a pure static pass served from the
    /// session's shared analysis store; nothing is executed or simulated.
    /// → [`Response::LintReport`].
    Lint {
        /// Submitted workload names; empty = every submitted workload.
        workloads: Vec<String>,
    },
    /// Run one registry experiment (`table1`, `fig7`, …, `consolidation`)
    /// over the submitted workloads, through the server's shared analysis
    /// store. A purely additive v2 extension, like `Lint`. →
    /// [`Response::Experiment`], or [`Response::Error`] for an unknown
    /// experiment name.
    Experiment {
        /// Registry key of the experiment (`ExperimentRegistry::standard`
        /// names: `table1`, `fig7`, `fig8`, `fig9`, `q3`, `q4`, `security`,
        /// `tracegen`, `lint`, `consolidation`, `frontier`). `frontier`
        /// runs the successive-halving search and streams
        /// [`Response::Progress`] lines before its terminal reply.
        name: String,
        /// Submitted workload names; empty = every submitted workload.
        workloads: Vec<String>,
    },
    /// Cancel the in-flight request carrying this client-supplied id (see
    /// [`RequestEnvelope`]); its stream terminates with
    /// [`Response::Cancelled`] instead of `Done`, and so does this
    /// request's. → [`Response::Cancelled`], or [`Response::Error`] when no
    /// in-flight request carries the id.
    Cancel {
        /// The id the target request was submitted under.
        id: String,
    },
    /// Serialize one fingerprint-range shard of the server's analysis
    /// store (protocol v3). → [`Response::ShardSnapshot`], or
    /// [`Response::Error`] when `shard` is out of range.
    SnapshotShard {
        /// Shard index, `0..shards` as reported by
        /// [`Response::ShardSnapshot`].
        shard: usize,
    },
    /// Load a snapshot's analyses into the server's store, skipping
    /// fingerprints it already holds (protocol v3) — the receiving half of
    /// a `shard-sync`. → [`Response::Absorbed`].
    AbsorbSnapshot {
        /// The entries to absorb (any shard count; entries are re-routed
        /// by fingerprint range on arrival).
        snapshot: AnalysisSnapshot,
    },
    /// Stop the server after this response. → [`Response::ShuttingDown`].
    Shutdown,
}

/// The v2 request framing: a client-supplied id around a [`Request`]. The
/// server echoes the id in a [`ResponseEnvelope`] around every line of this
/// request's response stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen id; in-flight ids must be unique per server, and a
    /// sweep's id is the handle [`Request::Cancel`] takes.
    pub id: String,
    /// The wrapped request.
    pub request: Request,
}

/// The v2 response framing: the request's id echoed around each
/// [`Response`] line. Only sent for requests that arrived in a
/// [`RequestEnvelope`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The id of the request this line answers.
    pub id: String,
    /// The wrapped response.
    pub response: Response,
}

/// Metadata closing a sweep response stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Number of [`Response::Record`] lines streamed before this summary.
    pub records: usize,
    /// Labels of the design points evaluated, in record (column) order.
    pub designs: Vec<String>,
    /// Analysis-cache counters of the server's session *after* this sweep —
    /// a repeated identical request shows pure hits here.
    pub cache: CacheStats,
    /// Distinct programs analyzed by the session so far.
    pub analyzed_programs: usize,
    /// The same plain-text rendering offline runs print
    /// (`cassandra_core::report::render_text` over the record stream).
    pub report: String,
}

/// One server response (one line on the wire).
// Record dominates the enum's size by design: it is the streamed payload
// and exists in bulk; boxing it would only add indirection (and the
// vendored serde shim does not derive through `Box`).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness reply carrying [`PROTOCOL_VERSION`].
    Pong {
        /// The server's protocol revision.
        protocol: u32,
    },
    /// The registered design-point labels, in registration order.
    Policies {
        /// Policy labels (also valid in [`Request::Sweep`]).
        labels: Vec<String>,
    },
    /// The ingested workload names, in submission order.
    Workloads {
        /// Workload names (also valid in sweep requests).
        names: Vec<String>,
    },
    /// A workload was ingested (or replaced an identically named one).
    Submitted {
        /// The workload's name inside the session.
        name: String,
        /// Its library group (`BearSSL`, `OpenSSL`, `PQC`, `Synthetic`).
        group: String,
    },
    /// One evaluation record of a streaming sweep response.
    Record(EvalRecord),
    /// End of a sweep stream, with session metadata.
    Done(SweepSummary),
    /// The static-lint verdicts for a [`Request::Lint`], one row per
    /// workload in request order, plus the same plain-text table offline
    /// `lint` runs print.
    LintReport {
        /// Per-workload verdict rows.
        rows: Vec<LintRow>,
        /// `cassandra_core::report::render_text` over the rows.
        report: String,
    },
    /// A completed registry experiment for a [`Request::Experiment`]: the
    /// typed output plus the same plain-text rendering offline runs print.
    Experiment {
        /// Registry key of the experiment that ran.
        name: String,
        /// Human-readable title.
        title: String,
        /// The typed output (renderable with `cassandra_core::report`).
        output: ExperimentOutput,
        /// `cassandra_core::report::render_text` over the output.
        report: String,
    },
    /// Non-terminal progress line of a streamed run: how many workload
    /// simulations have completed out of a total that is fixed before the
    /// first one starts (so clients can render a stable bar). Streamed by
    /// `frontier` Experiment runs and (since v3) by `Sweep`/`GridSweep`
    /// (one line after each `Record`) and `Submit` (a single `1/1` line),
    /// always before the stream's terminal line; `cells_done` is strictly
    /// monotone and `cells_total` constant within one request.
    Progress {
        /// Simulations completed so far.
        cells_done: usize,
        /// Total simulations this run will perform (constant per run).
        cells_total: usize,
    },
    /// One fingerprint-range shard of the server's analysis store, for a
    /// [`Request::SnapshotShard`] (protocol v3).
    ShardSnapshot {
        /// The shard index this snapshot covers.
        shard: usize,
        /// The server store's total shard count (`shard < shards`).
        shards: usize,
        /// The shard's entries, ordered by fingerprint.
        snapshot: AnalysisSnapshot,
    },
    /// Acknowledgement of a [`Request::AbsorbSnapshot`] (protocol v3).
    Absorbed {
        /// Entries in the submitted snapshot.
        received: usize,
        /// Entries actually absorbed (fingerprints the store lacked).
        absorbed: usize,
    },
    /// Terminal line of a sweep stream stopped by [`Request::Cancel`] (no
    /// further `Record`s follow), and the acknowledgement sent to the
    /// canceling connection. Analyses completed before the cancellation
    /// stay cached.
    Cancelled {
        /// The cancelled request's id.
        id: String,
    },
    /// Acknowledgement of [`Request::Shutdown`]; the server stops accepting
    /// connections after sending it.
    ShuttingDown,
    /// The error envelope: the request could not be parsed or served. The
    /// connection stays usable.
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// True for every response that terminates a request's reply stream
    /// (everything except the streamed [`Response::Record`] and
    /// [`Response::Progress`] lines).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Record(_) | Response::Progress { .. })
    }
}

/// Encodes one message as its single-line wire form (no trailing newline).
pub fn encode<T: Serialize>(message: &T) -> String {
    serde_json::to_string(message).expect("vendored serde_json is infallible")
}

/// Decodes one wire line into a message.
///
/// # Errors
///
/// Returns the underlying serde error on malformed JSON or a shape
/// mismatch.
pub fn decode<T: Deserialize>(line: &str) -> Result<T, serde_json::Error> {
    serde_json::from_str(line.trim())
}

/// True for a value shaped like an envelope: an object carrying an `id`
/// field plus the given payload field.
fn is_envelope(value: &serde::Value, payload: &str) -> bool {
    value.get_field("id").is_some() && value.get_field(payload).is_some()
}

/// Decodes one request line in either framing: a [`RequestEnvelope`]
/// (v2, `{"id":…,"request":…}`) yields `(Some(id), request)`, a bare
/// [`Request`] (v1) yields `(None, request)`.
///
/// # Errors
///
/// Returns the underlying serde error on malformed JSON or a line that is
/// neither framing.
pub fn decode_request(line: &str) -> Result<(Option<String>, Request), serde_json::Error> {
    let value: serde::Value = serde_json::from_str(line.trim())?;
    if is_envelope(&value, "request") {
        let envelope = RequestEnvelope::from_value(&value)?;
        Ok((Some(envelope.id), envelope.request))
    } else {
        Ok((None, Request::from_value(&value)?))
    }
}

/// Decodes one response line in either framing (the mirror of
/// [`decode_request`], used by clients).
///
/// # Errors
///
/// Returns the underlying serde error on malformed JSON or a line that is
/// neither framing.
pub fn decode_response(line: &str) -> Result<(Option<String>, Response), serde_json::Error> {
    let value: serde::Value = serde_json::from_str(line.trim())?;
    if is_envelope(&value, "response") {
        let envelope = ResponseEnvelope::from_value(&value)?;
        Ok((Some(envelope.id), envelope.response))
    } else {
        Ok((None, Response::from_value(&value)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_requests_are_bare_strings() {
        assert_eq!(encode(&Request::Ping), "\"Ping\"");
        assert_eq!(encode(&Request::ListPolicies), "\"ListPolicies\"");
        assert_eq!(
            decode::<Request>("\"Shutdown\"").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::ListPolicies,
            Request::ListWorkloads,
            Request::Submit {
                spec: WorkloadSpec::Suite {
                    name: "ChaCha20_ct".to_string(),
                },
            },
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "sha256".to_string(),
                    size: 128,
                    name: Some("my-hash".to_string()),
                },
            },
            Request::Sweep {
                workloads: vec!["ChaCha20_ct".to_string()],
                policies: vec!["Cassandra".to_string(), "Fence".to_string()],
            },
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Tournament".to_string()],
                    tournament_thresholds: vec![2, 8],
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
            Request::Lint {
                workloads: vec!["ChaCha20_ct".to_string()],
            },
            Request::Experiment {
                name: "consolidation".to_string(),
                workloads: Vec::new(),
            },
            Request::Cancel {
                id: "sweep-1".to_string(),
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = encode(&request);
            assert!(!line.contains('\n'), "framing must stay single-line");
            assert_eq!(decode::<Request>(&line).unwrap(), request);
        }
    }

    #[test]
    fn envelopes_round_trip_and_coexist_with_bare_framing() {
        let envelope = RequestEnvelope {
            id: "sweep-1".to_string(),
            request: Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["Cassandra".to_string()],
            },
        };
        let line = encode(&envelope);
        assert!(line.starts_with("{\"id\":\"sweep-1\""), "{line}");
        assert_eq!(
            decode_request(&line).unwrap(),
            (Some("sweep-1".to_string()), envelope.request.clone())
        );

        // Bare v1 framing still decodes, with no id.
        assert_eq!(decode_request("\"Ping\"").unwrap(), (None, Request::Ping));
        assert_eq!(
            decode_request(&encode(&envelope.request)).unwrap(),
            (None, envelope.request)
        );

        // Responses mirror the request framing.
        let tagged = ResponseEnvelope {
            id: "sweep-1".to_string(),
            response: Response::Cancelled {
                id: "sweep-1".to_string(),
            },
        };
        let line = encode(&tagged);
        assert_eq!(
            decode_response(&line).unwrap(),
            (Some("sweep-1".to_string()), tagged.response.clone())
        );
        assert_eq!(
            decode_response(&encode(&tagged.response)).unwrap(),
            (None, tagged.response)
        );
        assert_eq!(
            decode_response("\"ShuttingDown\"").unwrap(),
            (None, Response::ShuttingDown)
        );
    }

    #[test]
    fn cancel_and_cancelled_are_terminal_and_single_line() {
        let cancel = Request::Cancel {
            id: "grid".to_string(),
        };
        assert_eq!(encode(&cancel), "{\"Cancel\":{\"id\":\"grid\"}}");
        let cancelled = Response::Cancelled {
            id: "grid".to_string(),
        };
        assert_eq!(encode(&cancelled), "{\"Cancelled\":{\"id\":\"grid\"}}");
        assert!(cancelled.is_terminal());
        assert_eq!(decode::<Response>(&encode(&cancelled)).unwrap(), cancelled);
    }

    #[test]
    fn lint_request_and_report_round_trip() {
        let lint = Request::Lint {
            workloads: Vec::new(),
        };
        assert_eq!(encode(&lint), "{\"Lint\":{\"workloads\":[]}}");
        assert_eq!(decode::<Request>(&encode(&lint)).unwrap(), lint);

        let report = Response::LintReport {
            rows: Vec::new(),
            report: "Workload ...\n".to_string(),
        };
        assert!(report.is_terminal(), "a lint reply is a single line");
        assert_eq!(decode::<Response>(&encode(&report)).unwrap(), report);
    }

    #[test]
    fn grid_spec_parses_defense_labels() {
        let spec = GridSpec {
            defenses: vec!["Cassandra-part".to_string(), "tournament".to_string()],
            tournament_thresholds: vec![4],
            btu_partitions: vec![2, 4],
            btu_entries: Vec::new(),
            miss_penalties: Vec::new(),
            redirect_penalties: Vec::new(),
        };
        let grid = spec.to_grid().unwrap();
        assert_eq!(
            grid.defenses,
            [DefenseMode::CassandraPartitioned, DefenseMode::Tournament]
        );
        assert_eq!(grid.len(), 4, "2 defenses x 1 threshold x 2 partitions");
    }

    #[test]
    fn grid_spec_rejects_bad_input() {
        let empty = GridSpec {
            defenses: Vec::new(),
            tournament_thresholds: Vec::new(),
            btu_partitions: Vec::new(),
            btu_entries: Vec::new(),
            miss_penalties: Vec::new(),
            redirect_penalties: Vec::new(),
        };
        assert!(empty.to_grid().unwrap_err().contains("at least one"));
        let unknown = GridSpec {
            defenses: vec!["NotADefense".to_string()],
            ..empty
        };
        assert!(unknown.to_grid().unwrap_err().contains("NotADefense"));
    }

    #[test]
    fn experiment_request_and_response_round_trip() {
        let request = Request::Experiment {
            name: "consolidation".to_string(),
            workloads: vec!["ChaCha20_ct".to_string()],
        };
        assert_eq!(
            encode(&request),
            "{\"Experiment\":{\"name\":\"consolidation\",\"workloads\":[\"ChaCha20_ct\"]}}"
        );
        assert_eq!(decode::<Request>(&encode(&request)).unwrap(), request);

        let response = Response::Experiment {
            name: "consolidation".to_string(),
            title: "Consolidation: N-tenant mixes on one shared core".to_string(),
            output: ExperimentOutput::Consolidation(
                cassandra_core::consolidation::ConsolidationResult {
                    tenant_count: 4,
                    quantum: 5_000,
                    policies: Vec::new(),
                },
            ),
            report: "Consolidation: 4 tenants\n".to_string(),
        };
        assert!(response.is_terminal(), "an experiment reply is one line");
        let line = encode(&response);
        assert!(!line.contains('\n'), "framing must stay single-line");
        assert_eq!(decode::<Response>(&line).unwrap(), response);
    }

    #[test]
    fn progress_lines_are_non_terminal_and_round_trip() {
        let progress = Response::Progress {
            cells_done: 3,
            cells_total: 24,
        };
        assert_eq!(
            encode(&progress),
            "{\"Progress\":{\"cells_done\":3,\"cells_total\":24}}"
        );
        assert!(!progress.is_terminal(), "a stream continues after Progress");
        assert_eq!(decode::<Response>(&encode(&progress)).unwrap(), progress);

        let tagged = ResponseEnvelope {
            id: "frontier-1".to_string(),
            response: progress.clone(),
        };
        assert_eq!(
            decode_response(&encode(&tagged)).unwrap(),
            (Some("frontier-1".to_string()), progress)
        );
    }

    #[test]
    fn shard_sync_messages_round_trip() {
        let request = Request::SnapshotShard { shard: 2 };
        assert_eq!(encode(&request), "{\"SnapshotShard\":{\"shard\":2}}");
        assert_eq!(decode::<Request>(&encode(&request)).unwrap(), request);

        let absorb = Request::AbsorbSnapshot {
            snapshot: AnalysisSnapshot::default(),
        };
        let line = encode(&absorb);
        assert!(line.starts_with("{\"AbsorbSnapshot\""), "{line}");
        assert_eq!(decode::<Request>(&line).unwrap(), absorb);

        let reply = Response::ShardSnapshot {
            shard: 2,
            shards: 8,
            snapshot: AnalysisSnapshot::default(),
        };
        assert!(reply.is_terminal(), "a shard snapshot is one line");
        assert_eq!(decode::<Response>(&encode(&reply)).unwrap(), reply);

        let absorbed = Response::Absorbed {
            received: 3,
            absorbed: 1,
        };
        assert_eq!(
            encode(&absorbed),
            "{\"Absorbed\":{\"received\":3,\"absorbed\":1}}"
        );
        assert!(absorbed.is_terminal());
        assert_eq!(decode::<Response>(&encode(&absorbed)).unwrap(), absorbed);
    }

    #[test]
    fn error_envelope_round_trips() {
        let resp = Response::Error {
            message: "invalid request: expected `,` or `}` in JSON object".to_string(),
        };
        let line = encode(&resp);
        assert!(line.starts_with("{\"Error\""));
        assert_eq!(decode::<Response>(&line).unwrap(), resp);
        assert!(resp.is_terminal());
    }
}
