//! The request handler: one long-lived evaluation session behind the wire
//! protocol, safe to drive from any number of threads at once.
//!
//! An [`EvalService`] owns the server's [`AnalysisStore`] — the same
//! thread-safe cache offline [`cassandra_core::eval::Evaluator`] sessions
//! use — so every
//! Algorithm-2 analysis is memoized by program fingerprint and shared
//! across *all* client requests: the second client to sweep a workload pays
//! zero analysis time, observable through the [`SweepSummary::cache`]
//! counters. It also owns the session's [`PolicyRegistry`] (seeded with the
//! standard design points) and the set of submitted workloads, each behind
//! its own lock. [`EvalService::handle`] therefore takes `&self`: requests
//! from different connections run **concurrently**, a sweep simulating its
//! matrix while other requests are answered. Sweeps stream their records as
//! cells complete and honor per-request cancellation
//! ([`Request::Cancel`] against the id of an in-flight request).
//!
//! Lock hierarchy (never hold two at once except as listed): `policies` and
//! `workloads` are leaf locks taken briefly to resolve a request's
//! selection; `cancels` maps in-flight request ids to [`CancelToken`]s; the
//! store's internal locks are below all of them. No lock is held while a
//! sweep simulates or while responses are written.
//!
//! The service is transport-agnostic: [`EvalService::handle_tagged`] maps
//! one [`Request`] (plus its optional client-supplied id) to a stream of
//! [`Response`]s through a caller-provided sink, and the loopback tests
//! drive it both in-process and over TCP. With
//! [`EvalService::with_cache_file`] the analysis store warm-starts from the
//! file (replaying any appended journal entries), **appends** each freshly
//! completed analysis to it as a journal line — so a crashed server keeps
//! everything analyzed before the crash — and compacts the journal back to
//! a single snapshot line periodically and on a clean `Shutdown`.

use crate::protocol::{Request, Response, SweepSummary, WorkloadSpec, PROTOCOL_VERSION};
use cassandra_core::eval::Evaluator;
use cassandra_core::eval::{
    AnalysisSnapshot, AnalysisStore, CancelToken, DesignPoint, EvalRecord, SnapshotEntry,
    SweepExecutor, SweepOutcome,
};
use cassandra_core::frontier::{self, AdaptiveSearch};
use cassandra_core::lint::LintRow;
use cassandra_core::policies::PolicyRegistry;
use cassandra_core::registry::{Experiment, ExperimentOutput, ExperimentRegistry};
use cassandra_core::report;
use cassandra_kernels::suite;
use cassandra_kernels::workload::Workload;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};

/// A sink receiving the response stream of one request. `Send` because a
/// streaming sweep emits records from its worker threads.
pub type ResponseSink<'a> = dyn FnMut(Response) -> io::Result<()> + Send + 'a;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The server-side evaluation session: a shared [`AnalysisStore`], the
/// policy registry and the submitted workload set, each behind its own
/// lock so requests proceed concurrently. See the
/// [module documentation](self).
pub struct EvalService {
    store: Arc<AnalysisStore>,
    policies: Mutex<PolicyRegistry>,
    workloads: Mutex<Vec<Workload>>,
    /// In-flight request ids → their cancellation tokens.
    cancels: Mutex<HashMap<String, CancelToken>>,
    journal: Option<Arc<CacheJournal>>,
}

/// Appended journal entries tolerated before the file is compacted back to
/// a single snapshot line (keeps replay and file size bounded).
const COMPACT_EVERY: usize = 32;

/// The incremental `--cache-file` persistence: an NDJSON file whose first
/// line is an [`AnalysisSnapshot`] (the compacted form) and whose following
/// lines are individual [`SnapshotEntry`]s appended as analyses complete.
/// See `docs/PROTOCOL.md` § "Cache journal file" for the on-disk format.
struct CacheJournal {
    path: PathBuf,
    state: Mutex<JournalState>,
}

struct JournalState {
    /// Open append handle, kept across appends; `None` until first use or
    /// after an append failure (re-opened lazily).
    file: Option<File>,
    /// Journal lines appended since the last compaction.
    appended: usize,
}

impl CacheJournal {
    fn new(path: PathBuf) -> Self {
        CacheJournal {
            path,
            state: Mutex::new(JournalState {
                file: None,
                appended: 0,
            }),
        }
    }

    /// Replays the journal into `store`: the leading snapshot line (if
    /// any) and every appended entry, stopping with a warning at the first
    /// malformed line — a crash can truncate the final append mid-line,
    /// and everything before it is still good. A corrupt journal is
    /// **repaired** on the spot by compacting the replayed prefix back to
    /// the file: the corrupt line is usually newline-less, so appending to
    /// it would concatenate the next entry onto the partial line
    /// (destroying both) and strand anything after it. Returns how many
    /// analyses were loaded.
    fn replay(&self, store: &AnalysisStore) -> usize {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return 0; // No file yet: cold start.
        };
        let mut loaded = 0;
        let mut corrupt = false;
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            // A compacted snapshot line and a journal entry line are both
            // accepted at any position; the writer only ever emits a
            // snapshot first, but self-describing lines make replay
            // order-independent.
            if let Ok(snapshot) = serde_json::from_str::<AnalysisSnapshot>(line) {
                loaded += store.absorb(snapshot);
            } else if let Ok(entry) = serde_json::from_str::<SnapshotEntry>(line) {
                loaded += store.absorb(AnalysisSnapshot {
                    entries: vec![entry],
                });
            } else {
                eprintln!(
                    "cassandra-server: cache journal {} corrupt at line {} — \
                     keeping the {} analyses replayed before it",
                    self.path.display(),
                    index + 1,
                    loaded
                );
                corrupt = true;
                break;
            }
        }
        if corrupt {
            match self.compact(store) {
                Ok(kept) => eprintln!(
                    "cassandra-server: cache journal {} compacted to its valid \
                     prefix ({kept} analyses)",
                    self.path.display()
                ),
                Err(e) => eprintln!(
                    "cassandra-server: corrupt cache journal {} not repaired: {e} \
                     (appends may be lost after another crash)",
                    self.path.display()
                ),
            }
        }
        loaded
    }

    /// Appends one freshly completed analysis as a journal line, compacting
    /// the file once [`COMPACT_EVERY`] lines have accumulated. Best-effort:
    /// persistence failures are logged, never propagated into the request
    /// that completed the analysis.
    fn append(&self, entry: &SnapshotEntry, store: &AnalysisStore) {
        let mut state = lock(&self.state);
        if state.appended + 1 >= COMPACT_EVERY {
            // The entry is already published in the store, so compacting
            // instead of appending persists it too.
            if let Err(e) = self.compact_locked(&mut state, store) {
                eprintln!(
                    "cassandra-server: cache journal compaction failed: {e} \
                     (journal left as-is)"
                );
            }
            return;
        }
        if state.file.is_none() {
            state.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .map_err(|e| {
                    eprintln!(
                        "cassandra-server: cache journal {} not appendable: {e}",
                        self.path.display()
                    );
                })
                .ok();
        }
        let Some(file) = state.file.as_mut() else {
            return;
        };
        let mut line = serde_json::to_string(entry).expect("vendored serde_json is infallible");
        line.push('\n');
        match file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
            Ok(()) => state.appended += 1,
            Err(e) => {
                eprintln!(
                    "cassandra-server: cache journal append failed: {e} \
                     (analysis kept in memory only)"
                );
                state.file = None;
            }
        }
    }

    /// Rewrites the file as a single compacted snapshot line of the whole
    /// store. Returns how many analyses were written.
    fn compact(&self, store: &AnalysisStore) -> io::Result<usize> {
        let mut state = lock(&self.state);
        self.compact_locked(&mut state, store)
    }

    fn compact_locked(&self, state: &mut JournalState, store: &AnalysisStore) -> io::Result<usize> {
        let snapshot = store.snapshot();
        let entries = snapshot.entries.len();
        let mut text = serde_json::to_string(&snapshot).expect("vendored serde_json is infallible");
        text.push('\n');
        std::fs::write(&self.path, text)?;
        state.file = None;
        state.appended = 0;
        Ok(entries)
    }
}

impl Default for EvalService {
    fn default() -> Self {
        Self::new()
    }
}

/// A heavy request's claim on its id slot in the in-flight table: holds
/// the request's [`CancelToken`] and, when the id was reserved by this
/// claim (`owned`), deregisters it on every exit path. A claim built from
/// a dispatch-time [`Reservation`] is not owned — the reservation keeps
/// the id registered until the dispatcher drops it, so the id stays
/// cancellable for the request's whole queued-plus-running lifetime.
struct RequestClaim<'a> {
    service: &'a EvalService,
    id: Option<&'a str>,
    token: CancelToken,
    owned: bool,
}

impl Drop for RequestClaim<'_> {
    fn drop(&mut self) {
        if self.owned {
            if let Some(id) = self.id {
                lock(&self.service.cancels).remove(id);
            }
        }
    }
}

/// A request id reserved on the dispatching thread *before* the request
/// enters the server's worker-pool queue, so a `Cancel` that races the
/// queue already finds a token to raise — the queued request then starts
/// pre-cancelled and terminates with `Cancelled` without simulating
/// anything. Deregisters the id on drop, i.e. after
/// [`EvalService::handle_reserved`] has finished serving the request.
pub struct Reservation {
    service: Arc<EvalService>,
    id: String,
    token: CancelToken,
}

impl Reservation {
    /// The reserved request id.
    pub fn id(&self) -> &str {
        &self.id
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        lock(&self.service.cancels).remove(&self.id);
    }
}

impl EvalService {
    /// A fresh session: the standard policy registry, no workloads ingested
    /// yet, an empty analysis store.
    pub fn new() -> Self {
        EvalService {
            store: Arc::new(AnalysisStore::new()),
            policies: Mutex::new(PolicyRegistry::standard()),
            workloads: Mutex::new(Vec::new()),
            cancels: Mutex::new(HashMap::new()),
            journal: None,
        }
    }

    /// Enables incremental cache persistence on `path`: warm-starts the
    /// analysis store by replaying the file (best-effort: a missing file
    /// starts cold, a corrupt line stops the replay there with a logged
    /// warning — never a panic), then journals every freshly completed
    /// analysis to it as an appended line, so a crashed server keeps
    /// everything analyzed before the crash. The journal is compacted back
    /// to a single snapshot line every `COMPACT_EVERY` (32) appends and on
    /// a clean `Shutdown`. Warmed entries never re-run Algorithm 2, so
    /// `Done.cache` reports them as hits.
    #[must_use]
    pub fn with_cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        let journal = Arc::new(CacheJournal::new(path.into()));
        journal.replay(&self.store);
        // The observer must not keep the store alive (the store owns the
        // observer): go through a weak reference for the compaction path.
        let weak: Weak<AnalysisStore> = Arc::downgrade(&self.store);
        let hook = Arc::clone(&journal);
        self.store
            .set_insert_observer(Some(Arc::new(move |entry: &SnapshotEntry| {
                if let Some(store) = weak.upgrade() {
                    hook.append(entry, &store);
                }
            })));
        self.journal = Some(journal);
        self
    }

    /// Compacts the cache journal to a single snapshot line of the current
    /// store, returning how many analyses were written (0 without a cache
    /// file). Called on a clean `Shutdown`; crash persistence does not
    /// depend on it (completed analyses are already journaled).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing the snapshot.
    pub fn save_cache(&self) -> io::Result<usize> {
        match &self.journal {
            Some(journal) => journal.compact(&self.store),
            None => Ok(0),
        }
    }

    /// The session's shared analysis store (for cache introspection and
    /// cross-session sharing).
    pub fn store(&self) -> &Arc<AnalysisStore> {
        &self.store
    }

    /// A snapshot of the session's policy registry (standard entries plus
    /// every grid expansion served so far).
    pub fn policies(&self) -> PolicyRegistry {
        lock(&self.policies).clone()
    }

    /// Names of the workloads ingested so far, in submission order.
    pub fn workload_names(&self) -> Vec<String> {
        lock(&self.workloads)
            .iter()
            .map(|w| w.name.clone())
            .collect()
    }

    /// Serves one id-less request ([`EvalService::handle_tagged`] with no
    /// id — the v1 framing).
    ///
    /// # Errors
    ///
    /// Propagates errors returned by `sink`.
    pub fn handle(&self, request: Request, sink: &mut ResponseSink<'_>) -> io::Result<()> {
        self.handle_tagged(None, request, sink)
    }

    /// Serves one request, writing the response stream to `sink`. `id` is
    /// the client-supplied request id, if the request arrived in a
    /// [`crate::protocol::RequestEnvelope`]; while a sweep with an id is in
    /// flight, a concurrent [`Request::Cancel`] with the same id stops it.
    /// Protocol and evaluation failures become [`Response::Error`]
    /// envelopes; `Err` is reserved for sink (I/O) failures.
    ///
    /// # Errors
    ///
    /// Propagates errors returned by `sink`.
    pub fn handle_tagged(
        &self,
        id: Option<&str>,
        request: Request,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        self.handle_inner(id, None, request, sink)
    }

    /// Reserves `id` in the in-flight table ahead of dispatch, so the id
    /// is already cancellable while its request sits in the worker-pool
    /// queue. Serve the request with [`EvalService::handle_reserved`] and
    /// keep the reservation alive until it returns.
    ///
    /// # Errors
    ///
    /// The id is already in flight.
    pub fn reserve(self: &Arc<Self>, id: &str) -> Result<Reservation, String> {
        let token = CancelToken::new();
        let mut cancels = lock(&self.cancels);
        if cancels.contains_key(id) {
            return Err(format!("request id `{id}` is already in flight"));
        }
        cancels.insert(id.to_string(), token.clone());
        drop(cancels);
        Ok(Reservation {
            service: Arc::clone(self),
            id: id.to_string(),
            token,
        })
    }

    /// Serves one request whose id was pre-reserved with
    /// [`EvalService::reserve`] (the server's dispatch path for tagged
    /// heavy requests): like [`EvalService::handle_tagged`], but the
    /// request runs under the reservation's cancel token instead of
    /// registering a fresh one — a `Cancel` that arrived while the request
    /// was still queued has already raised it.
    ///
    /// # Errors
    ///
    /// Propagates errors returned by `sink`.
    pub fn handle_reserved(
        &self,
        reservation: &Reservation,
        request: Request,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        self.handle_inner(
            Some(&reservation.id),
            Some(&reservation.token),
            request,
            sink,
        )
    }

    fn handle_inner(
        &self,
        id: Option<&str>,
        pre: Option<&CancelToken>,
        request: Request,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        match request {
            Request::Ping => sink(Response::Pong {
                protocol: PROTOCOL_VERSION,
            }),
            Request::ListPolicies => sink(Response::Policies {
                labels: lock(&self.policies)
                    .labels()
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            }),
            Request::ListWorkloads => sink(Response::Workloads {
                names: self.workload_names(),
            }),
            Request::Submit { spec } => match resolve_spec(&spec) {
                Ok(workload) => {
                    let response = Response::Submitted {
                        name: workload.name.clone(),
                        group: workload.group.to_string(),
                    };
                    let mut workloads = lock(&self.workloads);
                    workloads.retain(|w| w.name != workload.name);
                    workloads.push(workload);
                    drop(workloads);
                    // Ingestion is a single cell; the 1/1 Progress line
                    // gives Submit the same stream shape as the sweeps.
                    sink(Response::Progress {
                        cells_done: 1,
                        cells_total: 1,
                    })?;
                    sink(response)
                }
                Err(message) => sink(Response::Error { message }),
            },
            Request::Sweep {
                workloads,
                policies,
            } => match self.select_designs(&policies) {
                Ok(designs) => match self.claim(id, pre) {
                    Ok(claim) => self.run_sweep(claim, &workloads, designs, sink),
                    Err(message) => sink(Response::Error { message }),
                },
                Err(message) => sink(Response::Error { message }),
            },
            Request::GridSweep { workloads, grid } => match grid.to_grid() {
                Ok(grid) => {
                    // Validate the workload selection and reserve the
                    // request id before touching shared state: a rejected
                    // request must not leave grid entries behind in the
                    // session registry.
                    if let Err(message) = self.select_workloads(&workloads) {
                        return sink(Response::Error { message });
                    }
                    let claim = match self.claim(id, pre) {
                        Ok(claim) => claim,
                        Err(message) => return sink(Response::Error { message }),
                    };
                    let expansion = grid.expand();
                    let designs = expansion.designs().to_vec();
                    // Grid cells become first-class registry entries: later
                    // Sweep requests can address them by label.
                    // Re-registering identical cells is a no-op; a label
                    // that would change an existing registration is a
                    // protocol error (register_all is atomic on conflict).
                    if let Err(conflict) = lock(&self.policies).register_all(expansion) {
                        return sink(Response::Error {
                            message: conflict.to_string(),
                        });
                    }
                    self.run_sweep(claim, &workloads, designs, sink)
                }
                Err(message) => sink(Response::Error { message }),
            },
            Request::Lint { workloads } => match self.select_workloads(&workloads) {
                Ok(selected) => {
                    // Pure static pass served from the shared store: repeat
                    // lints of a program another request (or session) already
                    // linted are cache lookups, like sweep analyses.
                    let rows: Vec<LintRow> = selected
                        .iter()
                        .map(|w| LintRow::from_report(w, &self.store.lint(&w.kernel.program)))
                        .collect();
                    let report = report::render_text(&ExperimentOutput::Lint(rows.clone()));
                    sink(Response::LintReport { rows, report })
                }
                Err(message) => sink(Response::Error { message }),
            },
            Request::Experiment { name, workloads } => {
                match self.select_workloads(&workloads) {
                    Ok(selected) => {
                        // The frontier experiment is the one streamed
                        // experiment: it reserves the request id (so
                        // `Cancel` can prune it mid-rung) and emits
                        // `Progress` lines before its terminal reply.
                        if name == "frontier" {
                            return self.run_frontier(id, pre, selected, sink);
                        }
                        // A per-request session over the shared store: the
                        // experiment reuses every analysis any request has
                        // memoized, and leaves its own behind for the next.
                        let mut ev = Evaluator::builder()
                            .workloads(selected)
                            .store(Arc::clone(&self.store))
                            .build();
                        let registry = ExperimentRegistry::standard();
                        match registry.run(&name, &mut ev) {
                            Ok(Some(run)) => {
                                let report = report::render_text(&run.output);
                                sink(Response::Experiment {
                                    name: run.name,
                                    title: run.title,
                                    output: run.output,
                                    report,
                                })
                            }
                            Ok(None) => sink(Response::Error {
                                message: format!(
                                    "unknown experiment `{name}`; registered: {}",
                                    registry.names().join(", ")
                                ),
                            }),
                            Err(e) => sink(Response::Error {
                                message: format!("experiment failed: {e}"),
                            }),
                        }
                    }
                    Err(message) => sink(Response::Error { message }),
                }
            }
            Request::SnapshotShard { shard } => {
                let shards = self.store.shard_count();
                if shard >= shards {
                    sink(Response::Error {
                        message: format!(
                            "shard {shard} out of range; this store has {shards} shard(s)"
                        ),
                    })
                } else {
                    sink(Response::ShardSnapshot {
                        shard,
                        shards,
                        snapshot: self.store.snapshot_shard(shard),
                    })
                }
            }
            Request::AbsorbSnapshot { snapshot } => {
                let received = snapshot.entries.len();
                let absorbed = self.store.absorb(snapshot);
                // Absorbed analyses don't fire the journal's insert
                // observer (they weren't run here), so persist them by
                // compacting — the compacted snapshot is the whole store.
                if absorbed > 0 {
                    if let Some(journal) = &self.journal {
                        if let Err(e) = journal.compact(&self.store) {
                            eprintln!("cassandra-server: absorbed snapshot not journaled: {e}");
                        }
                    }
                }
                sink(Response::Absorbed { received, absorbed })
            }
            Request::Cancel { id: target } => {
                let token = lock(&self.cancels).get(&target).cloned();
                match token {
                    Some(token) => {
                        token.cancel();
                        sink(Response::Cancelled { id: target })
                    }
                    None => sink(Response::Error {
                        message: format!("no in-flight request with id `{target}`"),
                    }),
                }
            }
            Request::Shutdown => {
                // Warm-start snapshot on clean shutdown. A failed write must
                // not block the acknowledgement, but it must not be silent
                // either: the operator is about to lose the warmed cache, so
                // the failure goes to stderr and onto the wire as an `Error`
                // line ahead of `ShuttingDown`.
                if let Err(e) = self.save_cache() {
                    let message = format!("analysis cache snapshot not saved: {e}");
                    eprintln!("cassandra-server: {message}");
                    sink(Response::Error { message })?;
                }
                sink(Response::ShuttingDown)
            }
        }
    }

    /// Resolves policy labels against the registry; empty selects all.
    fn select_designs(&self, labels: &[String]) -> Result<Vec<DesignPoint>, String> {
        let policies = lock(&self.policies);
        if labels.is_empty() {
            return Ok(policies.designs().to_vec());
        }
        labels
            .iter()
            .map(|label| {
                policies.get(label).cloned().ok_or_else(|| {
                    format!(
                        "unknown policy `{label}`; registered: {}",
                        policies.labels().join(", ")
                    )
                })
            })
            .collect()
    }

    /// Resolves workload names against the submitted set; empty selects
    /// all.
    fn select_workloads(&self, names: &[String]) -> Result<Vec<Workload>, String> {
        let workloads = lock(&self.workloads);
        if workloads.is_empty() {
            return Err(
                "no workloads submitted; send a Submit request before sweeping".to_string(),
            );
        }
        if names.is_empty() {
            return Ok(workloads.clone());
        }
        names
            .iter()
            .map(|name| {
                workloads
                    .iter()
                    .find(|w| &w.name == name)
                    .cloned()
                    .ok_or_else(|| {
                        format!(
                            "unknown workload `{name}`; submitted: {}",
                            workloads
                                .iter()
                                .map(|w| w.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
            })
            .collect()
    }

    /// Claims `id`'s slot in the in-flight table for concurrent
    /// cancellation. With a dispatch-time token (`pre`, from
    /// [`EvalService::reserve`]) the id is already registered and the
    /// claim merely adopts the token; otherwise the id is reserved here
    /// and the returned claim deregisters it on drop. Performed *before*
    /// any shared-state mutation, so a duplicate-id rejection leaves no
    /// residue behind.
    fn claim<'a>(
        &'a self,
        id: Option<&'a str>,
        pre: Option<&CancelToken>,
    ) -> Result<RequestClaim<'a>, String> {
        if let Some(token) = pre {
            return Ok(RequestClaim {
                service: self,
                id,
                token: token.clone(),
                owned: false,
            });
        }
        let token = CancelToken::new();
        if let Some(id) = id {
            let mut cancels = lock(&self.cancels);
            if cancels.contains_key(id) {
                return Err(format!("request id `{id}` is already in flight"));
            }
            cancels.insert(id.to_string(), token.clone());
        }
        Ok(RequestClaim {
            service: self,
            id,
            token,
            owned: true,
        })
    }

    /// Runs workloads × designs against the shared store, streaming each
    /// record as its cell (and every earlier cell) completes, then the
    /// closing summary — or `Cancelled`, with nothing further, when the
    /// request's token is raised mid-sweep. No service lock is held while
    /// the sweep simulates.
    fn run_sweep(
        &self,
        claim: RequestClaim<'_>,
        workload_names: &[String],
        designs: Vec<DesignPoint>,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        let workloads = match self.select_workloads(workload_names) {
            Ok(workloads) => workloads,
            Err(message) => return sink(Response::Error { message }),
        };
        if designs.is_empty() {
            return sink(Response::Error {
                message: "the sweep selects no design points".to_string(),
            });
        }

        let mut streamed: Vec<EvalRecord> = Vec::new();
        let mut sink_error: Option<io::Error> = None;
        let executor = SweepExecutor::new(&self.store);
        // One matrix cell per record: each record is chased by a Progress
        // line (monotone cells_done, constant cells_total) so pipelined
        // clients can make backpressure and cancel decisions mid-sweep.
        let cells_total = workloads.len() * designs.len();
        let mut cells_done = 0usize;
        let outcome = executor.sweep_stream(&workloads, &designs, &claim.token, |record| {
            let emitted = sink(Response::Record(record.clone())).and_then(|()| {
                cells_done += 1;
                sink(Response::Progress {
                    cells_done,
                    cells_total,
                })
            });
            match emitted {
                Ok(()) => {
                    streamed.push(record);
                    true
                }
                Err(e) => {
                    sink_error = Some(e);
                    false
                }
            }
        });
        if let Some(e) = sink_error {
            return Err(e);
        }
        match outcome {
            Ok(SweepOutcome::Complete) => {
                let summary = SweepSummary {
                    records: streamed.len(),
                    designs: designs.iter().map(|d| d.label.clone()).collect(),
                    cache: self.store.stats(),
                    analyzed_programs: self.store.len(),
                    // The exact formatter offline Experiment runs use.
                    report: report::render_text(&ExperimentOutput::Records(streamed)),
                };
                sink(Response::Done(summary))
            }
            Ok(SweepOutcome::Cancelled) => sink(Response::Cancelled {
                id: claim.id.unwrap_or_default().to_string(),
            }),
            Err(e) => sink(Response::Error {
                message: format!("evaluation failed: {e}"),
            }),
        }
    }

    /// Serves a wire `frontier` Experiment: the successive-halving search
    /// over the standard grid, streaming one [`Response::Progress`] line per
    /// completed simulation cell before the terminal reply. The grid is
    /// consumed as plain design points — nothing is registered into the
    /// session's policy registry, so a cancelled run leaves no residue.
    fn run_frontier(
        &self,
        id: Option<&str>,
        pre: Option<&CancelToken>,
        workloads: Vec<Workload>,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        let claim = match self.claim(id, pre) {
            Ok(claim) => claim,
            Err(message) => return sink(Response::Error { message }),
        };
        let mut ev = Evaluator::builder()
            .workloads(workloads.clone())
            .store(Arc::clone(&self.store))
            .build();
        let mut sink_error: Option<io::Error> = None;
        let outcome = {
            let sink = &mut *sink;
            let sink_error = &mut sink_error;
            frontier::frontier_with(
                &mut ev,
                &workloads,
                &frontier::standard_grid(),
                Some(AdaptiveSearch::default()),
                &claim.token,
                move |p| {
                    if sink_error.is_none() {
                        if let Err(e) = sink(Response::Progress {
                            cells_done: p.cells_done,
                            cells_total: p.cells_total,
                        }) {
                            *sink_error = Some(e);
                        }
                    }
                },
            )
        };
        if let Some(e) = sink_error {
            return Err(e);
        }
        match outcome {
            Ok(Some(result)) => {
                let experiment = cassandra_core::registry::FrontierExperiment::default();
                let output = ExperimentOutput::Frontier(result);
                let report = report::render_text(&output);
                sink(Response::Experiment {
                    name: Experiment::name(&experiment).to_string(),
                    title: Experiment::title(&experiment).to_string(),
                    output,
                    report,
                })
            }
            Ok(None) => sink(Response::Cancelled {
                id: claim.id.unwrap_or_default().to_string(),
            }),
            Err(e) => sink(Response::Error {
                message: format!("experiment failed: {e}"),
            }),
        }
    }
}

/// Upper bound on `WorkloadSpec::Kernel` sizes. The sized kernels allocate
/// message buffers proportional to `size` and simulation time grows with
/// it; an unchecked size would let one request abort or wedge the
/// long-lived server (and lose its warmed analysis cache).
const MAX_KERNEL_SIZE: u64 = 1 << 20;

/// Builds the workload a [`WorkloadSpec`] names.
fn resolve_spec(spec: &WorkloadSpec) -> Result<Workload, String> {
    match spec {
        WorkloadSpec::Suite { name } => suite::full_suite()
            .into_iter()
            .find(|w| &w.name == name)
            .ok_or_else(|| {
                let names: Vec<String> = suite::full_suite().into_iter().map(|w| w.name).collect();
                format!(
                    "unknown suite workload `{name}`; available: {}",
                    names.join(", ")
                )
            }),
        WorkloadSpec::Kernel { family, size, name } => {
            if *size > MAX_KERNEL_SIZE {
                return Err(format!(
                    "kernel size {size} exceeds the limit of {MAX_KERNEL_SIZE}"
                ));
            }
            let size = (*size as usize).max(1);
            let mut workload = match family.as_str() {
                "chacha20" => suite::chacha20_workload(size),
                "sha256" => suite::sha256_workload(size),
                "aes128" | "aes" => suite::aes_ctr_workload(size),
                "des" | "feistel" => suite::des_workload(size),
                "poly1305" => suite::poly1305_workload(size),
                "modexp" => suite::modpow_workload(),
                "x25519" => suite::ec_c25519_workload(),
                "kyber" => suite::kyber512_workload(),
                "sphincs" => suite::sphincs_shake_workload(),
                other => {
                    return Err(format!(
                        "unknown kernel family `{other}`; available: chacha20, sha256, \
                         aes128, des, poly1305, modexp, x25519, kyber, sphincs"
                    ))
                }
            };
            if let Some(name) = name {
                workload.name = name.clone();
            }
            Ok(workload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::GridSpec;
    use cassandra_cpu::config::DefenseMode;

    fn collect(service: &EvalService, request: Request) -> Vec<Response> {
        collect_tagged(service, None, request)
    }

    fn collect_tagged(service: &EvalService, id: Option<&str>, request: Request) -> Vec<Response> {
        let mut out = Vec::new();
        service
            .handle_tagged(id, request, &mut |r| {
                out.push(r);
                Ok(())
            })
            .unwrap();
        out
    }

    #[test]
    fn ping_reports_the_protocol_version() {
        let service = EvalService::new();
        assert_eq!(
            collect(&service, Request::Ping),
            [Response::Pong {
                protocol: PROTOCOL_VERSION
            }]
        );
    }

    #[test]
    fn list_policies_matches_the_standard_registry() {
        let service = EvalService::new();
        let responses = collect(&service, Request::ListPolicies);
        let Response::Policies { labels } = &responses[0] else {
            panic!("expected Policies, got {responses:?}");
        };
        assert_eq!(labels.len(), DefenseMode::ALL.len());
        assert!(labels.iter().any(|l| l == "Cassandra-part"));
    }

    #[test]
    fn submit_by_kernel_family_and_rename() {
        let service = EvalService::new();
        let responses = collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: 64,
                    name: Some("my-stream".to_string()),
                },
            },
        );
        assert_eq!(
            responses,
            [
                Response::Progress {
                    cells_done: 1,
                    cells_total: 1
                },
                Response::Submitted {
                    name: "my-stream".to_string(),
                    group: "BearSSL".to_string()
                }
            ]
        );
        assert_eq!(service.workload_names(), ["my-stream"]);
        // Resubmitting the same name replaces, not duplicates.
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: 128,
                    name: Some("my-stream".to_string()),
                },
            },
        );
        assert_eq!(service.workload_names(), ["my-stream"]);
    }

    #[test]
    fn lint_reports_static_verdicts_from_the_shared_store() {
        use cassandra_analysis::StaticVerdict;
        let service = EvalService::new();
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: 64,
                    name: None,
                },
            },
        );
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Suite {
                    name: "AES_CTR".to_string(),
                },
            },
        );
        let responses = collect(
            &service,
            Request::Lint {
                workloads: Vec::new(),
            },
        );
        let [Response::LintReport { rows, report }] = responses.as_slice() else {
            panic!("expected one LintReport, got {responses:?}");
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].verdict, StaticVerdict::CtClean);
        assert_eq!(rows[1].verdict, StaticVerdict::ArchLeak, "table AES");
        assert!(report.contains("ct-clean") && report.contains("arch-leak"));
        // Served from the store: no Algorithm-2 runs, reports memoized.
        assert_eq!(service.store.stats().misses, 0);
        assert_eq!(service.store.linted_programs(), 2);
        collect(
            &service,
            Request::Lint {
                workloads: vec!["AES_CTR".to_string()],
            },
        );
        assert_eq!(service.store.linted_programs(), 2, "repeat lints are hits");
    }

    #[test]
    fn lint_without_workloads_is_an_error_envelope() {
        let service = EvalService::new();
        let responses = collect(
            &service,
            Request::Lint {
                workloads: Vec::new(),
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("Submit")),
            "{responses:?}"
        );
    }

    #[test]
    fn sweep_without_workloads_is_an_error_envelope() {
        let service = EvalService::new();
        let responses = collect(
            &service,
            Request::Sweep {
                workloads: Vec::new(),
                policies: Vec::new(),
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("Submit")),
            "{responses:?}"
        );
    }

    #[test]
    fn unknown_policy_label_is_an_error_envelope() {
        let service = EvalService::new();
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Suite {
                    name: "DES_ct".to_string(),
                },
            },
        );
        let responses = collect(
            &service,
            Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["NotAPolicy".to_string()],
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("NotAPolicy")),
            "{responses:?}"
        );
    }

    #[test]
    fn oversized_kernel_submit_is_rejected() {
        let service = EvalService::new();
        let responses = collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: u64::MAX,
                    name: None,
                },
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("limit")),
            "{responses:?}"
        );
        assert!(service.workload_names().is_empty());
    }

    #[test]
    fn rejected_grid_sweep_does_not_register_its_expansion() {
        let service = EvalService::new();
        let before = service.policies().len();
        // No workloads submitted: the request fails validation…
        let responses = collect(
            &service,
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Cassandra".to_string()],
                    tournament_thresholds: Vec::new(),
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { .. }),
            "{responses:?}"
        );
        // …and must leave no grid cells behind in the shared registry.
        assert_eq!(service.policies().len(), before);
        assert!(service.policies().get("Cassandra+btu8").is_none());
    }

    #[test]
    fn grid_sweep_registers_its_expansion() {
        let service = EvalService::new();
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "des".to_string(),
                    size: 4,
                    name: None,
                },
            },
        );
        let before = service.policies().len();
        let responses = collect(
            &service,
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Cassandra".to_string()],
                    tournament_thresholds: Vec::new(),
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
        );
        let Response::Done(summary) = responses.last().unwrap() else {
            panic!("expected Done, got {responses:?}");
        };
        assert_eq!(summary.records, 1);
        assert_eq!(summary.designs, ["Cassandra+btu8"]);
        assert!(summary.report.contains("Cassandra+btu8"));
        // The expansion became a registry entry, addressable by later Sweeps.
        assert_eq!(service.policies().len(), before + 1);
        assert!(service.policies().get("Cassandra+btu8").is_some());

        // Re-submitting the identical grid is a no-op on the registry, not
        // a silent overwrite (and not an error).
        let responses = collect(
            &service,
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Cassandra".to_string()],
                    tournament_thresholds: Vec::new(),
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
        );
        assert!(matches!(responses.last(), Some(Response::Done(_))));
        assert_eq!(service.policies().len(), before + 1);
    }

    #[test]
    fn duplicate_id_grid_sweep_leaves_no_registry_residue() {
        let service = EvalService::new();
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "des".to_string(),
                    size: 4,
                    name: None,
                },
            },
        );
        let before = service.policies().len();
        let service_ref = &service;
        let mut probed = false;
        service
            .handle_tagged(
                Some("dup"),
                Request::Sweep {
                    workloads: Vec::new(),
                    policies: vec!["Cassandra".to_string(), "Fence".to_string()],
                },
                &mut |r| {
                    if matches!(r, Response::Record(_)) && !probed {
                        probed = true;
                        // While `dup` is in flight, a GridSweep reusing the
                        // id is rejected…
                        let responses = collect_tagged(
                            service_ref,
                            Some("dup"),
                            Request::GridSweep {
                                workloads: Vec::new(),
                                grid: GridSpec {
                                    defenses: vec!["Cassandra".to_string()],
                                    tournament_thresholds: Vec::new(),
                                    btu_partitions: Vec::new(),
                                    btu_entries: vec![64],
                                    miss_penalties: Vec::new(),
                                    redirect_penalties: Vec::new(),
                                },
                            },
                        );
                        assert!(
                            matches!(&responses[0], Response::Error { message }
                                if message.contains("already in flight")),
                            "{responses:?}"
                        );
                        // …and must not leave its expansion in the shared
                        // registry.
                        assert_eq!(service_ref.policies().len(), before);
                        assert!(service_ref.policies().get("Cassandra+btu64").is_none());
                    }
                    Ok(())
                },
            )
            .unwrap();
        assert!(probed, "the rejected grid must have been probed mid-sweep");
        assert_eq!(service.policies().len(), before);
    }

    #[test]
    fn frontier_experiment_streams_progress_then_a_terminal_reply() {
        let service = EvalService::new();
        for (family, size) in [("chacha20", 64), ("des", 4)] {
            collect(
                &service,
                Request::Submit {
                    spec: WorkloadSpec::Kernel {
                        family: family.to_string(),
                        size,
                        name: None,
                    },
                },
            );
        }
        let before = service.policies().len();
        let responses = collect(
            &service,
            Request::Experiment {
                name: "frontier".to_string(),
                workloads: Vec::new(),
            },
        );
        // Every line but the last is a Progress line with a fixed total.
        let (terminal, progress) = responses.split_last().unwrap();
        assert!(!progress.is_empty(), "{responses:?}");
        let mut last_done = 0;
        for line in progress {
            let Response::Progress {
                cells_done,
                cells_total,
            } = line
            else {
                panic!("expected Progress, got {line:?}");
            };
            assert!(!line.is_terminal());
            assert!(*cells_done > last_done && cells_done <= cells_total);
            last_done = *cells_done;
        }
        let Response::Experiment { name, output, .. } = terminal else {
            panic!("expected Experiment, got {terminal:?}");
        };
        assert_eq!(name, "frontier");
        let ExperimentOutput::Frontier(result) = output else {
            panic!("expected Frontier output");
        };
        assert!(result.adaptive, "the wire path runs successive halving");
        assert!(!result.frontier.is_empty());
        // The grid expansion is consumed as plain design points: no
        // registry residue.
        assert_eq!(service.policies().len(), before);
    }

    #[test]
    fn cancel_of_unknown_id_is_an_error_envelope() {
        let service = EvalService::new();
        let responses = collect(
            &service,
            Request::Cancel {
                id: "nope".to_string(),
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("nope")),
            "{responses:?}"
        );
    }

    #[test]
    fn pre_cancelled_sweep_terminates_with_cancelled_and_no_records() {
        let service = EvalService::new();
        collect(
            &service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "des".to_string(),
                    size: 4,
                    name: None,
                },
            },
        );
        // Cancel the id from inside the sink on the first response the
        // sweep emits — deterministic without a second thread: the sweep
        // registers its token before evaluating anything, so cancelling on
        // the first record stops the stream immediately after it.
        let service_ref = &service;
        let mut responses = Vec::new();
        service_ref
            .handle_tagged(
                Some("s1"),
                Request::Sweep {
                    workloads: Vec::new(),
                    policies: Vec::new(),
                },
                &mut |r| {
                    if matches!(r, Response::Record(_)) {
                        let cancels = collect(
                            service_ref,
                            Request::Cancel {
                                id: "s1".to_string(),
                            },
                        );
                        assert_eq!(
                            cancels,
                            [Response::Cancelled {
                                id: "s1".to_string()
                            }]
                        );
                    }
                    responses.push(r);
                    Ok(())
                },
            )
            .unwrap();
        let records = responses
            .iter()
            .filter(|r| matches!(r, Response::Record(_)))
            .count();
        assert!(
            records < DefenseMode::ALL.len(),
            "cancellation must stop the stream early ({records} records)"
        );
        assert_eq!(
            responses.last(),
            Some(&Response::Cancelled {
                id: "s1".to_string()
            }),
            "cancelled sweeps terminate with Cancelled, not Done"
        );
        // The id is free again afterwards.
        let responses = collect(
            &service,
            Request::Cancel {
                id: "s1".to_string(),
            },
        );
        assert!(matches!(&responses[0], Response::Error { .. }));
    }
}
