//! The request handler: one long-lived evaluation session behind the wire
//! protocol.
//!
//! An [`EvalService`] owns the server's [`Evaluator`] — the same session
//! type offline drivers use — so every analysis is memoized by program
//! fingerprint and shared across *all* client requests: the second client
//! to sweep a workload pays zero analysis time, observable through the
//! [`SweepSummary::cache`] counters. It also owns the session's
//! [`PolicyRegistry`] (seeded with the standard design points) and the set
//! of submitted workloads. `GridSweep` requests expand into registry
//! entries, so grid-discovered design points stay addressable by label in
//! later `Sweep` requests.
//!
//! The service is transport-agnostic: [`EvalService::handle`] maps one
//! [`Request`] to a stream of [`Response`]s through a caller-provided sink,
//! and the loopback tests drive it both in-process and over TCP.

use crate::protocol::{Request, Response, SweepSummary, WorkloadSpec, PROTOCOL_VERSION};
use cassandra_core::eval::{DesignPoint, Evaluator};
use cassandra_core::policies::PolicyRegistry;
use cassandra_core::registry::ExperimentOutput;
use cassandra_core::report;
use cassandra_kernels::suite;
use cassandra_kernels::workload::Workload;
use std::io;

/// A sink receiving the response stream of one request.
pub type ResponseSink<'a> = dyn FnMut(Response) -> io::Result<()> + 'a;

/// The server-side evaluation session: a memoized [`Evaluator`], the policy
/// registry and the submitted workload set. See the
/// [module documentation](self).
pub struct EvalService {
    evaluator: Evaluator,
    policies: PolicyRegistry,
    workloads: Vec<Workload>,
}

impl Default for EvalService {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalService {
    /// A fresh session: the standard policy registry, no workloads ingested
    /// yet, an empty analysis cache.
    pub fn new() -> Self {
        EvalService {
            evaluator: Evaluator::new(),
            policies: PolicyRegistry::standard(),
            workloads: Vec::new(),
        }
    }

    /// The session's evaluator (for cache introspection).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The session's policy registry (standard entries plus every grid
    /// expansion served so far).
    pub fn policies(&self) -> &PolicyRegistry {
        &self.policies
    }

    /// Names of the workloads ingested so far, in submission order.
    pub fn workload_names(&self) -> Vec<String> {
        self.workloads.iter().map(|w| w.name.clone()).collect()
    }

    /// Serves one request, writing the response stream to `sink`. Protocol
    /// and evaluation failures become [`Response::Error`] envelopes; `Err`
    /// is reserved for sink (I/O) failures.
    ///
    /// # Errors
    ///
    /// Propagates errors returned by `sink`.
    pub fn handle(&mut self, request: Request, sink: &mut ResponseSink<'_>) -> io::Result<()> {
        match request {
            Request::Ping => sink(Response::Pong {
                protocol: PROTOCOL_VERSION,
            }),
            Request::ListPolicies => sink(Response::Policies {
                labels: self
                    .policies
                    .labels()
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            }),
            Request::ListWorkloads => sink(Response::Workloads {
                names: self.workload_names(),
            }),
            Request::Submit { spec } => match resolve_spec(&spec) {
                Ok(workload) => {
                    let response = Response::Submitted {
                        name: workload.name.clone(),
                        group: workload.group.to_string(),
                    };
                    self.workloads.retain(|w| w.name != workload.name);
                    self.workloads.push(workload);
                    sink(response)
                }
                Err(message) => sink(Response::Error { message }),
            },
            Request::Sweep {
                workloads,
                policies,
            } => match self.select_designs(&policies) {
                Ok(designs) => self.run_sweep(&workloads, designs, sink),
                Err(message) => sink(Response::Error { message }),
            },
            Request::GridSweep { workloads, grid } => match grid.to_grid() {
                Ok(grid) => {
                    // Validate the workload selection before touching shared
                    // state: a rejected request must not leave grid entries
                    // behind in the session registry.
                    if let Err(message) = self.select_workloads(&workloads) {
                        return sink(Response::Error { message });
                    }
                    let expansion = grid.expand();
                    let designs = expansion.designs().to_vec();
                    // Grid cells become first-class registry entries: later
                    // Sweep requests can address them by label.
                    self.policies.register_all(expansion);
                    self.run_sweep(&workloads, designs, sink)
                }
                Err(message) => sink(Response::Error { message }),
            },
            Request::Shutdown => sink(Response::ShuttingDown),
        }
    }

    /// Resolves policy labels against the registry; empty selects all.
    fn select_designs(&self, labels: &[String]) -> Result<Vec<DesignPoint>, String> {
        if labels.is_empty() {
            return Ok(self.policies.designs().to_vec());
        }
        labels
            .iter()
            .map(|label| {
                self.policies.get(label).cloned().ok_or_else(|| {
                    format!(
                        "unknown policy `{label}`; registered: {}",
                        self.policies.labels().join(", ")
                    )
                })
            })
            .collect()
    }

    /// Resolves workload names against the submitted set; empty selects
    /// all.
    fn select_workloads(&self, names: &[String]) -> Result<Vec<Workload>, String> {
        if self.workloads.is_empty() {
            return Err(
                "no workloads submitted; send a Submit request before sweeping".to_string(),
            );
        }
        if names.is_empty() {
            return Ok(self.workloads.clone());
        }
        names
            .iter()
            .map(|name| {
                self.workloads
                    .iter()
                    .find(|w| &w.name == name)
                    .cloned()
                    .ok_or_else(|| {
                        format!(
                            "unknown workload `{name}`; submitted: {}",
                            self.workload_names().join(", ")
                        )
                    })
            })
            .collect()
    }

    /// Runs workloads × designs through the shared session and streams the
    /// records plus the closing summary.
    fn run_sweep(
        &mut self,
        workload_names: &[String],
        designs: Vec<DesignPoint>,
        sink: &mut ResponseSink<'_>,
    ) -> io::Result<()> {
        let workloads = match self.select_workloads(workload_names) {
            Ok(workloads) => workloads,
            Err(message) => return sink(Response::Error { message }),
        };
        if designs.is_empty() {
            return sink(Response::Error {
                message: "the sweep selects no design points".to_string(),
            });
        }
        match self.evaluator.sweep_matrix(&workloads, &designs) {
            Ok(records) => {
                for record in &records {
                    sink(Response::Record(record.clone()))?;
                }
                let summary = SweepSummary {
                    records: records.len(),
                    designs: designs.iter().map(|d| d.label.clone()).collect(),
                    cache: self.evaluator.cache_stats(),
                    analyzed_programs: self.evaluator.analyzed_programs(),
                    // The exact formatter offline Experiment runs use.
                    report: report::render_text(&ExperimentOutput::Records(records)),
                };
                sink(Response::Done(summary))
            }
            Err(e) => sink(Response::Error {
                message: format!("evaluation failed: {e}"),
            }),
        }
    }
}

/// Upper bound on `WorkloadSpec::Kernel` sizes. The sized kernels allocate
/// message buffers proportional to `size` and simulation time grows with
/// it; an unchecked size would let one request abort or wedge the
/// long-lived server (and lose its warmed analysis cache).
const MAX_KERNEL_SIZE: u64 = 1 << 20;

/// Builds the workload a [`WorkloadSpec`] names.
fn resolve_spec(spec: &WorkloadSpec) -> Result<Workload, String> {
    match spec {
        WorkloadSpec::Suite { name } => suite::full_suite()
            .into_iter()
            .find(|w| &w.name == name)
            .ok_or_else(|| {
                let names: Vec<String> = suite::full_suite().into_iter().map(|w| w.name).collect();
                format!(
                    "unknown suite workload `{name}`; available: {}",
                    names.join(", ")
                )
            }),
        WorkloadSpec::Kernel { family, size, name } => {
            if *size > MAX_KERNEL_SIZE {
                return Err(format!(
                    "kernel size {size} exceeds the limit of {MAX_KERNEL_SIZE}"
                ));
            }
            let size = (*size as usize).max(1);
            let mut workload = match family.as_str() {
                "chacha20" => suite::chacha20_workload(size),
                "sha256" => suite::sha256_workload(size),
                "aes128" | "aes" => suite::aes_ctr_workload(size),
                "des" | "feistel" => suite::des_workload(size),
                "poly1305" => suite::poly1305_workload(size),
                "modexp" => suite::modpow_workload(),
                "x25519" => suite::ec_c25519_workload(),
                "kyber" => suite::kyber512_workload(),
                "sphincs" => suite::sphincs_shake_workload(),
                other => {
                    return Err(format!(
                        "unknown kernel family `{other}`; available: chacha20, sha256, \
                         aes128, des, poly1305, modexp, x25519, kyber, sphincs"
                    ))
                }
            };
            if let Some(name) = name {
                workload.name = name.clone();
            }
            Ok(workload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::GridSpec;
    use cassandra_cpu::config::DefenseMode;

    fn collect(service: &mut EvalService, request: Request) -> Vec<Response> {
        let mut out = Vec::new();
        service
            .handle(request, &mut |r| {
                out.push(r);
                Ok(())
            })
            .unwrap();
        out
    }

    #[test]
    fn ping_reports_the_protocol_version() {
        let mut service = EvalService::new();
        assert_eq!(
            collect(&mut service, Request::Ping),
            [Response::Pong {
                protocol: PROTOCOL_VERSION
            }]
        );
    }

    #[test]
    fn list_policies_matches_the_standard_registry() {
        let mut service = EvalService::new();
        let responses = collect(&mut service, Request::ListPolicies);
        let Response::Policies { labels } = &responses[0] else {
            panic!("expected Policies, got {responses:?}");
        };
        assert_eq!(labels.len(), DefenseMode::ALL.len());
        assert!(labels.iter().any(|l| l == "Cassandra-part"));
    }

    #[test]
    fn submit_by_kernel_family_and_rename() {
        let mut service = EvalService::new();
        let responses = collect(
            &mut service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: 64,
                    name: Some("my-stream".to_string()),
                },
            },
        );
        assert_eq!(
            responses,
            [Response::Submitted {
                name: "my-stream".to_string(),
                group: "BearSSL".to_string()
            }]
        );
        assert_eq!(service.workload_names(), ["my-stream"]);
        // Resubmitting the same name replaces, not duplicates.
        collect(
            &mut service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: 128,
                    name: Some("my-stream".to_string()),
                },
            },
        );
        assert_eq!(service.workload_names(), ["my-stream"]);
    }

    #[test]
    fn sweep_without_workloads_is_an_error_envelope() {
        let mut service = EvalService::new();
        let responses = collect(
            &mut service,
            Request::Sweep {
                workloads: Vec::new(),
                policies: Vec::new(),
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("Submit")),
            "{responses:?}"
        );
    }

    #[test]
    fn unknown_policy_label_is_an_error_envelope() {
        let mut service = EvalService::new();
        collect(
            &mut service,
            Request::Submit {
                spec: WorkloadSpec::Suite {
                    name: "DES_ct".to_string(),
                },
            },
        );
        let responses = collect(
            &mut service,
            Request::Sweep {
                workloads: Vec::new(),
                policies: vec!["NotAPolicy".to_string()],
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("NotAPolicy")),
            "{responses:?}"
        );
    }

    #[test]
    fn oversized_kernel_submit_is_rejected() {
        let mut service = EvalService::new();
        let responses = collect(
            &mut service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "chacha20".to_string(),
                    size: u64::MAX,
                    name: None,
                },
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { message } if message.contains("limit")),
            "{responses:?}"
        );
        assert!(service.workload_names().is_empty());
    }

    #[test]
    fn rejected_grid_sweep_does_not_register_its_expansion() {
        let mut service = EvalService::new();
        let before = service.policies().len();
        // No workloads submitted: the request fails validation…
        let responses = collect(
            &mut service,
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Cassandra".to_string()],
                    tournament_thresholds: Vec::new(),
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
        );
        assert!(
            matches!(&responses[0], Response::Error { .. }),
            "{responses:?}"
        );
        // …and must leave no grid cells behind in the shared registry.
        assert_eq!(service.policies().len(), before);
        assert!(service.policies().get("Cassandra+btu8").is_none());
    }

    #[test]
    fn grid_sweep_registers_its_expansion() {
        let mut service = EvalService::new();
        collect(
            &mut service,
            Request::Submit {
                spec: WorkloadSpec::Kernel {
                    family: "des".to_string(),
                    size: 4,
                    name: None,
                },
            },
        );
        let before = service.policies().len();
        let responses = collect(
            &mut service,
            Request::GridSweep {
                workloads: Vec::new(),
                grid: GridSpec {
                    defenses: vec!["Cassandra".to_string()],
                    tournament_thresholds: Vec::new(),
                    btu_partitions: Vec::new(),
                    btu_entries: vec![8],
                    miss_penalties: Vec::new(),
                    redirect_penalties: Vec::new(),
                },
            },
        );
        let Response::Done(summary) = responses.last().unwrap() else {
            panic!("expected Done, got {responses:?}");
        };
        assert_eq!(summary.records, 1);
        assert_eq!(summary.designs, ["Cassandra+btu8"]);
        assert!(summary.report.contains("Cassandra+btu8"));
        // The expansion became a registry entry, addressable by later Sweeps.
        assert_eq!(service.policies().len(), before + 1);
        assert!(service.policies().get("Cassandra+btu8").is_some());
    }
}
