//! Integration tests for the paper's security analysis (Figure 6 / Table 2).
//!
//! Every scenario is evaluated by building the gadget twice with different
//! secrets and comparing the attacker-visible data-access traces (which
//! include wrong-path accesses). A design protects a scenario when equal
//! sequential contract traces imply equal attacker-visible traces. The
//! `verdict` helper lives in the shared `common` harness.

mod common;

use cassandra::kernels::gadgets::{BranchSite, LeakGadget};
use cassandra::prelude::*;
use common::verdict;

/// Scenarios 1 and 2: crypto leak gadgets after a crypto branch must be
/// protected by Cassandra (BTU-enforced sequential flow) but leak on the
/// unsafe baseline.
#[test]
fn scenarios_1_and_2_crypto_branch_to_crypto_gadgets() {
    for gadget in [LeakGadget::CryptoRegister, LeakGadget::CryptoMemory] {
        let unsafe_v = verdict(DefenseMode::UnsafeBaseline, BranchSite::Crypto, gadget);
        assert!(
            !unsafe_v.is_protected(),
            "{gadget:?}: the unsafe baseline must leak transiently"
        );
        let cass_v = verdict(DefenseMode::Cassandra, BranchSite::Crypto, gadget);
        assert!(cass_v.is_protected(), "{gadget:?}: Cassandra must protect");
    }
}

/// Scenarios 3 and 4: non-crypto gadgets after a crypto branch. Cassandra
/// enforces the sequential flow of the crypto branch, so nothing transient
/// executes after it.
#[test]
fn scenarios_3_and_4_crypto_branch_to_non_crypto_gadgets() {
    for gadget in [LeakGadget::NonCryptoRegister, LeakGadget::NonCryptoMemory] {
        let cass_v = verdict(DefenseMode::Cassandra, BranchSite::Crypto, gadget);
        assert!(cass_v.is_protected(), "{gadget:?}");
    }
}

/// Scenarios 5 and 6: crypto gadgets after a *non-crypto* branch are
/// protected by the integrity check (fetch never speculatively redirects into
/// the crypto PC range).
#[test]
fn scenarios_5_and_6_non_crypto_branch_to_crypto_gadgets() {
    for gadget in [LeakGadget::CryptoMemory, LeakGadget::CryptoRegister] {
        let unsafe_v = verdict(DefenseMode::UnsafeBaseline, BranchSite::NonCrypto, gadget);
        let cass_v = verdict(DefenseMode::Cassandra, BranchSite::NonCrypto, gadget);
        assert!(
            cass_v.is_protected(),
            "{gadget:?}: integrity check must hold"
        );
        // The memory gadget leaks on the baseline (the register gadget's
        // register is declassified, so it may legitimately look public).
        if gadget == LeakGadget::CryptoMemory {
            assert!(!unsafe_v.is_protected(), "baseline leaks scenario 5");
        }
    }
}

/// Scenario 7: non-crypto register gadget after a non-crypto branch — the
/// speculative flow is allowed and leaks only declassified data, so the
/// attacker-visible trace stays secret-independent even on the baseline.
#[test]
fn scenario_7_non_crypto_register_gadget_is_harmless() {
    for defense in [DefenseMode::UnsafeBaseline, DefenseMode::Cassandra] {
        let v = verdict(
            defense,
            BranchSite::NonCrypto,
            LeakGadget::NonCryptoRegister,
        );
        assert!(v.is_protected(), "{defense:?}");
    }
}

/// Scenario 8: non-crypto memory gadget after a non-crypto branch violates
/// software isolation. Cassandra explicitly does **not** protect this case
/// (it is out of scope); combining it with a ProSpeCT-style defense for the
/// non-crypto code closes it.
#[test]
fn scenario_8_software_isolation_needs_a_companion_defense() {
    let cass = verdict(
        DefenseMode::Cassandra,
        BranchSite::NonCrypto,
        LeakGadget::NonCryptoMemory,
    );
    assert!(
        !cass.is_protected(),
        "Cassandra alone does not provide software isolation (scenario 8)"
    );
    let combined = verdict(
        DefenseMode::CassandraProspect,
        BranchSite::NonCrypto,
        LeakGadget::NonCryptoMemory,
    );
    assert!(
        combined.is_protected(),
        "Cassandra+ProSpeCT must block the out-of-bounds transient leak"
    );
}

/// The way-partitioned BTU changes Trace Cache residency, never replay:
/// scenario-for-scenario it must match full Cassandra's verdicts exactly.
#[test]
fn partitioned_btu_matches_cassandras_verdicts() {
    for site in [BranchSite::Crypto, BranchSite::NonCrypto] {
        for gadget in [
            LeakGadget::CryptoRegister,
            LeakGadget::CryptoMemory,
            LeakGadget::NonCryptoRegister,
            LeakGadget::NonCryptoMemory,
        ] {
            let cass = verdict(DefenseMode::Cassandra, site, gadget);
            let part = verdict(DefenseMode::CassandraPartitioned, site, gadget);
            assert_eq!(
                cass.is_protected(),
                part.is_protected(),
                "{site:?}->{gadget:?}"
            );
        }
    }
}

/// The tournament's modeled security trade-off: a cold (once-executed)
/// crypto branch is still BPU-predicted, so the Figure-5(a) register gadget
/// leaks exactly as on the baseline — the deployment only protects branches
/// hot enough to have earned a trace.
#[test]
fn tournament_cold_branches_leak_like_the_baseline() {
    let v = verdict(
        DefenseMode::Tournament,
        BranchSite::Crypto,
        LeakGadget::CryptoRegister,
    );
    assert!(v.contract_equal, "the gadget is constant-time");
    assert!(
        !v.is_protected(),
        "a cold crypto branch must still leak transiently under Tournament"
    );
}

/// The Listing-1 decryption loop: skipping the loop transiently would leak
/// the secret on the baseline; Cassandra replays the loop sequentially.
#[test]
fn listing1_loop_skip_is_blocked_by_cassandra() {
    use cassandra::core::security::evaluate_scenario;
    let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
    let verdict = evaluate_scenario(
        "listing1",
        |secret| cassandra::kernels::gadgets::listing1_decrypt(secret, 8),
        &cfg,
    )
    .unwrap();
    // The architectural leak of the *declassified* plaintext is intentional
    // (so the contract traces legitimately differ in that one access); what
    // Cassandra guarantees is that nothing executes transiently, i.e. the
    // secret `m` is never leaked before the decryption loop completes.
    assert!(
        !verdict.transient_activity,
        "no wrong-path execution under Cassandra"
    );
    assert!(verdict.is_protected());
}
