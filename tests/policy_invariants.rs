//! Invariants of the pluggable frontend/defense-policy layer, driven by the
//! shared differential-test harness in `common`.
//!
//! Every policy registered in the standard [`PolicyRegistry`] — including
//! the `Fence`, `Cassandra-noTC`, `Tournament` and `Cassandra-part`
//! scenarios added purely as policies — must preserve architectural
//! behaviour exactly (the golden committed stream), run through the existing
//! experiment drivers without driver edits, and sit where the paper's
//! performance ordering expects.

mod common;

use cassandra::core::experiments::{figure7_with, q3_with};
use cassandra::core::security::security_sweep_with;
use cassandra::kernels::gadgets::{BranchSite, LeakGadget};
use cassandra::kernels::suite;
use cassandra::prelude::*;

/// The sweep-matrix invariant: every registered policy commits the
/// identical instruction stream and the identical architectural data-access
/// trace as the unsafe baseline — defenses change timing, never semantics.
/// The matrix runner re-checks this for every policy anyone registers.
#[test]
fn every_registered_policy_preserves_the_architectural_trace() {
    let workloads = [suite::chacha20_workload(64), suite::des_workload(4)];
    let registry = PolicyRegistry::standard();
    assert_eq!(registry.len(), DefenseMode::ALL.len());
    let mut ev = Evaluator::new();
    common::run_policy_matrix(&mut ev, &workloads, &registry, |_, _, _, _| {});
}

/// Standard-registry labels are unique and every one round-trips through
/// `DefenseMode::from_str`, including the two new design points.
#[test]
fn registry_labels_are_unique_and_round_trip() {
    let registry = PolicyRegistry::standard();
    let mut labels = registry.labels();
    assert!(labels.contains(&"Tournament"));
    assert!(labels.contains(&"Cassandra-part"));
    for label in &labels {
        let mode: DefenseMode = label.parse().unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(mode.label(), *label, "label must round-trip exactly");
        assert_eq!(
            registry.get(label).expect("registered").config.defense,
            mode
        );
    }
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), registry.len(), "labels must be unique");
}

/// The policy-only scenarios run through the existing Figure-7 driver with
/// no driver edits, and the performance ordering holds: `Fence` is strictly
/// slower than Cassandra (serializing lower bound), restricted Trace Cache
/// variants cannot beat the full one.
#[test]
fn new_policies_run_through_fig7_unchanged() {
    let workloads = vec![suite::chacha20_workload(64), suite::sha256_workload(96)];
    let designs = [
        DefenseMode::UnsafeBaseline,
        DefenseMode::Cassandra,
        DefenseMode::Fence,
        DefenseMode::CassandraNoTc,
        DefenseMode::CassandraPartitioned,
        DefenseMode::Tournament,
    ];
    let mut ev = Evaluator::new();
    let fig7 = figure7_with(&mut ev, &workloads, &designs).unwrap();
    let cassandra = fig7.geomean[DefenseMode::Cassandra.label()];
    let fence = fig7.geomean[DefenseMode::Fence.label()];
    let no_tc = fig7.geomean[DefenseMode::CassandraNoTc.label()];
    let partitioned = fig7.geomean[DefenseMode::CassandraPartitioned.label()];
    assert!(
        fence > cassandra,
        "Fence ({fence:.4}) must be strictly slower than Cassandra ({cassandra:.4})"
    );
    assert!(
        no_tc >= cassandra,
        "a zero-entry Trace Cache cannot beat the full one"
    );
    assert!(
        partitioned >= cassandra - 1e-12,
        "halving the per-context Trace Cache cannot beat the full one"
    );
    // Per-workload, not just in the geomean.
    for row in &fig7.rows {
        assert!(
            row.cycles[DefenseMode::Fence.label()] > row.cycles[DefenseMode::Cassandra.label()],
            "{}: Fence must be strictly slower",
            row.workload
        );
    }
}

/// Same for the Q3 driver: the new policies are just more variants.
#[test]
fn new_policies_run_through_q3_unchanged() {
    let workloads = [suite::chacha20_workload(64)];
    let mut ev = Evaluator::new();
    let rows = q3_with(
        &mut ev,
        &workloads,
        &[
            DefenseMode::Fence,
            DefenseMode::CassandraNoTc,
            DefenseMode::CassandraPartitioned,
        ],
    )
    .unwrap();
    assert_eq!(rows.len(), 3);
    let fence = &rows[0];
    assert_eq!(fence.design, DefenseMode::Fence.label());
    assert!(
        fence.variant_cycles > fence.cassandra_cycles,
        "Fence strictly slower than Cassandra"
    );
    assert!(rows[1].slowdown_pct >= 0.0);
    assert_eq!(rows[2].design, DefenseMode::CassandraPartitioned.label());
    assert!(
        rows[2].slowdown_pct >= -1e-9,
        "a way-partitioned Trace Cache cannot beat the unpartitioned one"
    );
}

/// `Cassandra-noTC` replays exactly like Cassandra but pays a Trace Cache
/// miss on every multi-target lookup: nonzero `BtuStats::misses`, zero hits.
#[test]
fn cassandra_no_tc_streams_every_multi_target_lookup() {
    let w = suite::sha256_workload(96);
    let mut ev = Evaluator::new();
    let base = CpuConfig::golden_cove_like();
    let full = ev
        .simulate_cached(&w, &base.with_defense(DefenseMode::Cassandra))
        .unwrap();
    let no_tc = ev
        .simulate_cached(&w, &base.with_defense(DefenseMode::CassandraNoTc))
        .unwrap();
    assert_eq!(no_tc.stats.mispredictions, 0, "replay is still exact");
    assert!(no_tc.stats.btu.misses > 0, "every lookup streams");
    assert_eq!(no_tc.stats.btu.hits, 0, "nothing is ever resident");
    assert!(no_tc.stats.btu.misses > full.stats.btu.misses);
    assert!(no_tc.stats.cycles >= full.stats.cycles);
}

/// The tournament frontend exercises both of its components on a real
/// kernel: cold crypto branches train the BPU, hot ones replay the BTU, and
/// the architectural stream still matches the golden baseline (checked by
/// the matrix runner above; re-checked here against the captured golden).
#[test]
fn tournament_uses_both_components_and_matches_the_golden_stream() {
    let w = suite::sha256_workload(96);
    let mut ev = Evaluator::new();
    let golden = common::capture_golden(&mut ev, &w);
    let outcome = ev
        .simulate_cached(
            &w,
            &CpuConfig::golden_cove_like().with_defense(DefenseMode::Tournament),
        )
        .unwrap();
    common::assert_matches_golden(&golden, &outcome, "Tournament");
    assert!(outcome.stats.btu.lookups > 0, "hot branches replay the BTU");
    assert!(
        outcome.stats.bpu.pht_lookups > 0,
        "cold branches hit the BPU"
    );
    // Full Cassandra never opens a crypto speculation window; the tournament
    // may (cold branches), but promotion keeps it at or below the baseline's
    // squash behaviour.
    let baseline = &golden.outcome;
    assert!(outcome.stats.mispredictions <= baseline.stats.mispredictions);
}

/// The new policies run through the existing security sweep unchanged:
/// `Fence` never speculates (all eight scenarios protected);
/// `Cassandra-part` protects exactly what Cassandra protects (partitioning
/// changes residency, not replay); `Tournament` trades security for trace
/// storage — its cold crypto branches speculate, so it must NOT protect the
/// crypto-branch scenarios that full Cassandra blocks.
#[test]
fn new_policies_run_through_the_security_sweep_unchanged() {
    let mut ev = Evaluator::new();
    let designs = [
        DefenseMode::Fence,
        DefenseMode::CassandraNoTc,
        DefenseMode::CassandraPartitioned,
        DefenseMode::Tournament,
    ];
    let matrix = security_sweep_with(&mut ev, &designs).unwrap();
    assert_eq!(matrix.cells.len(), 8 * designs.len());
    assert!(matrix.all_protected_under(DefenseMode::Fence.label()));
    for cell in &matrix.cells {
        if cell.design == DefenseMode::Fence.label() {
            assert!(
                !cell.verdict.transient_activity,
                "{}: Fence never executes a wrong path",
                cell.scenario
            );
        }
    }
    for label in [
        DefenseMode::CassandraNoTc.label(),
        DefenseMode::CassandraPartitioned.label(),
    ] {
        let leaks: Vec<_> = matrix
            .cells
            .iter()
            .filter(|c| c.design == label && !c.verdict.is_protected())
            .collect();
        assert_eq!(leaks.len(), 1, "{label}: {leaks:?}");
        assert_eq!(leaks[0].site, BranchSite::NonCrypto);
        assert_eq!(leaks[0].gadget, LeakGadget::NonCryptoMemory);
    }
    // The tournament's modeled weakness: a once-executed (cold) crypto
    // branch speculates and leaks like the baseline.
    let tournament_crypto_leak = matrix.cells.iter().any(|c| {
        c.design == DefenseMode::Tournament.label()
            && c.site == BranchSite::Crypto
            && !c.verdict.is_protected()
    });
    assert!(
        tournament_crypto_leak,
        "cold tournament crypto branches must still leak transiently"
    );
}

/// The policy registry drives the sweep through the builder: one record per
/// workload × registered policy, in registry order.
#[test]
fn builder_policies_sweep_the_whole_registry() {
    let registry = PolicyRegistry::standard();
    let mut session = Evaluator::builder()
        .workload(suite::chacha20_workload(64))
        .policies(&registry)
        .build();
    let records = session.sweep().unwrap();
    assert_eq!(records.len(), registry.len());
    let labels: Vec<&str> = records.iter().map(|r| r.design.as_str()).collect();
    assert_eq!(labels, registry.labels());
    assert_eq!(
        session.cache_stats().misses,
        1,
        "one analysis, {} designs",
        registry.len()
    );
}
