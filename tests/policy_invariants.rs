//! Invariants of the pluggable frontend/defense-policy layer.
//!
//! Every policy registered in the standard [`PolicyRegistry`] — including
//! the `Fence` and `Cassandra-noTC` scenarios added purely as policies —
//! must preserve architectural behaviour exactly, run through the existing
//! experiment drivers without driver edits, and sit where the paper's
//! performance ordering expects.

use cassandra::core::experiments::{figure7_with, q3_with};
use cassandra::core::security::security_sweep_with;
use cassandra::kernels::gadgets::{BranchSite, LeakGadget};
use cassandra::kernels::suite;
use cassandra::prelude::*;

/// The sweep-matrix invariant: every registered policy commits the
/// identical instruction stream and the identical architectural data-access
/// trace as the unsafe baseline — defenses change timing, never semantics.
#[test]
fn every_registered_policy_preserves_the_architectural_trace() {
    let workloads = [suite::chacha20_workload(64), suite::des_workload(4)];
    let registry = PolicyRegistry::standard();
    assert_eq!(registry.len(), DefenseMode::ALL.len());
    let mut ev = Evaluator::new();
    for w in &workloads {
        let baseline = ev
            .simulate_cached(w, &CpuConfig::golden_cove_like())
            .unwrap();
        assert!(baseline.halted);
        for design in registry.designs() {
            let outcome = ev.simulate_cached(w, &design.config).unwrap();
            assert!(outcome.halted, "{}: {}", w.name, design.label);
            assert_eq!(
                outcome.stats.committed_instructions, baseline.stats.committed_instructions,
                "{}: {} changed the committed instruction stream",
                w.name, design.label
            );
            assert_eq!(
                outcome.architectural_accesses, baseline.architectural_accesses,
                "{}: {} changed the architectural access trace",
                w.name, design.label
            );
        }
    }
}

/// `Fence` and `Cassandra-noTC` run through the existing Figure-7 driver
/// with no driver edits, and `Fence` is strictly slower than Cassandra on
/// the crypto suite (it is the serializing lower bound).
#[test]
fn fence_and_no_tc_run_through_fig7_unchanged() {
    let workloads = vec![suite::chacha20_workload(64), suite::sha256_workload(96)];
    let designs = [
        DefenseMode::UnsafeBaseline,
        DefenseMode::Cassandra,
        DefenseMode::Fence,
        DefenseMode::CassandraNoTc,
    ];
    let mut ev = Evaluator::new();
    let fig7 = figure7_with(&mut ev, &workloads, &designs).unwrap();
    let cassandra = fig7.geomean[DefenseMode::Cassandra.label()];
    let fence = fig7.geomean[DefenseMode::Fence.label()];
    let no_tc = fig7.geomean[DefenseMode::CassandraNoTc.label()];
    assert!(
        fence > cassandra,
        "Fence ({fence:.4}) must be strictly slower than Cassandra ({cassandra:.4})"
    );
    assert!(
        no_tc >= cassandra,
        "a zero-entry Trace Cache cannot beat the full one"
    );
    // Per-workload, not just in the geomean.
    for row in &fig7.rows {
        assert!(
            row.cycles[DefenseMode::Fence.label()] > row.cycles[DefenseMode::Cassandra.label()],
            "{}: Fence must be strictly slower",
            row.workload
        );
    }
}

/// Same for the Q3 driver: the new policies are just more variants.
#[test]
fn fence_and_no_tc_run_through_q3_unchanged() {
    let workloads = [suite::chacha20_workload(64)];
    let mut ev = Evaluator::new();
    let rows = q3_with(
        &mut ev,
        &workloads,
        &[DefenseMode::Fence, DefenseMode::CassandraNoTc],
    )
    .unwrap();
    assert_eq!(rows.len(), 2);
    let fence = &rows[0];
    assert_eq!(fence.design, DefenseMode::Fence.label());
    assert!(
        fence.variant_cycles > fence.cassandra_cycles,
        "Fence strictly slower than Cassandra"
    );
    assert!(rows[1].slowdown_pct >= 0.0);
}

/// `Cassandra-noTC` replays exactly like Cassandra but pays a Trace Cache
/// miss on every multi-target lookup: nonzero `BtuStats::misses`, zero hits.
#[test]
fn cassandra_no_tc_streams_every_multi_target_lookup() {
    let w = suite::sha256_workload(96);
    let mut ev = Evaluator::new();
    let base = CpuConfig::golden_cove_like();
    let full = ev
        .simulate_cached(&w, &base.with_defense(DefenseMode::Cassandra))
        .unwrap();
    let no_tc = ev
        .simulate_cached(&w, &base.with_defense(DefenseMode::CassandraNoTc))
        .unwrap();
    assert_eq!(no_tc.stats.mispredictions, 0, "replay is still exact");
    assert!(no_tc.stats.btu.misses > 0, "every lookup streams");
    assert_eq!(no_tc.stats.btu.hits, 0, "nothing is ever resident");
    assert!(no_tc.stats.btu.misses > full.stats.btu.misses);
    assert!(no_tc.stats.cycles >= full.stats.cycles);
}

/// The new policies run through the existing security sweep unchanged:
/// `Fence` never speculates (all eight scenarios protected); `Cassandra-noTC`
/// protects exactly what Cassandra protects (scenario 8 — software
/// isolation — stays out of scope).
#[test]
fn fence_and_no_tc_run_through_the_security_sweep_unchanged() {
    let mut ev = Evaluator::new();
    let matrix =
        security_sweep_with(&mut ev, &[DefenseMode::Fence, DefenseMode::CassandraNoTc]).unwrap();
    assert_eq!(matrix.cells.len(), 16);
    assert!(matrix.all_protected_under(DefenseMode::Fence.label()));
    for cell in &matrix.cells {
        if cell.design == DefenseMode::Fence.label() {
            assert!(
                !cell.verdict.transient_activity,
                "{}: Fence never executes a wrong path",
                cell.scenario
            );
        }
    }
    let no_tc_leaks: Vec<_> = matrix
        .cells
        .iter()
        .filter(|c| c.design == DefenseMode::CassandraNoTc.label() && !c.verdict.is_protected())
        .collect();
    assert_eq!(no_tc_leaks.len(), 1, "{no_tc_leaks:?}");
    assert_eq!(no_tc_leaks[0].site, BranchSite::NonCrypto);
    assert_eq!(no_tc_leaks[0].gadget, LeakGadget::NonCryptoMemory);
}

/// The policy registry drives the sweep through the builder: one record per
/// workload × registered policy, in registry order.
#[test]
fn builder_policies_sweep_the_whole_registry() {
    let registry = PolicyRegistry::standard();
    let mut session = Evaluator::builder()
        .workload(suite::chacha20_workload(64))
        .policies(&registry)
        .build();
    let records = session.sweep().unwrap();
    assert_eq!(records.len(), registry.len());
    let labels: Vec<&str> = records.iter().map(|r| r.design.as_str()).collect();
    assert_eq!(labels, registry.labels());
    assert_eq!(
        session.cache_stats().misses,
        1,
        "one analysis, nine designs"
    );
}
