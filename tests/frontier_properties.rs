//! Frontier dominance property tests over seeded random grids.
//!
//! The invariants, checked with an independent re-implementation of the
//! dominance relation:
//!
//! * no returned frontier point is dominated by **any** swept cell,
//! * every non-frontier full-suite cell is dominated by at least one
//!   frontier point, and
//! * the frontier (in fact the whole `FrontierResult`) is deterministic
//!   across worker-thread counts (`threads=1` vs `threads=4`), for both the
//!   exhaustive and the successive-halving search.
//!
//! Grids are generated from the shared seeded xorshift generator, so a
//! failure is replayable from the printed seed.

mod common;

use cassandra::core::frontier::{
    frontier_with_threads, standard_grid, AdaptiveSearch, FrontierResult,
};
use cassandra::prelude::*;

/// Independent dominance oracle: no worse on both axes, strictly better on
/// at least one (deliberately not the library's helper).
fn dominated_by(a: (f64, usize), b: (f64, usize)) -> bool {
    b.0 <= a.0 && b.1 <= a.1 && (b.0 < a.0 || b.1 < a.1)
}

fn run(
    ev: &mut Evaluator,
    workloads: &[Workload],
    grid: &GridSweep,
    adaptive: Option<AdaptiveSearch>,
    threads: usize,
) -> FrontierResult {
    frontier_with_threads(
        ev,
        workloads,
        grid,
        adaptive,
        &CancelToken::new(),
        |_| {},
        Some(threads),
    )
    .expect("frontier run")
    .expect("not cancelled")
}

/// Asserts the dominance invariants of one result.
fn assert_frontier_invariants(result: &FrontierResult, context: &str) {
    assert!(!result.frontier.is_empty(), "{context}: empty frontier");
    let full_cells: Vec<_> = result.cells.iter().filter(|c| c.full_suite).collect();
    // No frontier point is dominated by any swept full-suite cell. (Pruned
    // smoke-only cells carry incomparable smoke-subset scores, and the
    // exhaustive search has none.)
    for point in &result.frontier {
        for cell in &full_cells {
            assert!(
                !dominated_by(
                    (point.geomean_slowdown, point.security_leaks),
                    (cell.geomean_slowdown, cell.security_leaks),
                ),
                "{context}: frontier point {} is dominated by swept cell {}",
                point.label,
                cell.label
            );
        }
    }
    // Every non-frontier full-suite cell is dominated by >= 1 frontier point.
    for cell in &full_cells {
        if cell.on_frontier {
            continue;
        }
        assert!(
            result.frontier.iter().any(|p| dominated_by(
                (cell.geomean_slowdown, cell.security_leaks),
                (p.geomean_slowdown, p.security_leaks),
            )),
            "{context}: non-frontier cell {} is dominated by no frontier point",
            cell.label
        );
        assert!(
            cell.dominated_by >= 1,
            "{context}: non-frontier cell {} has dominated_by == 0",
            cell.label
        );
    }
    // The frontier is exactly the set of non-dominated full-suite cells.
    assert_eq!(
        result.frontier.len(),
        full_cells.iter().filter(|c| c.on_frontier).count(),
        "{context}: frontier/cell bookkeeping diverged"
    );
}

/// A seeded random grid: two distinct defenses plus random knob axes.
fn random_grid(rng: &mut common::Rng) -> GridSweep {
    let pool = [
        DefenseMode::UnsafeBaseline,
        DefenseMode::Cassandra,
        DefenseMode::Fence,
        DefenseMode::Tournament,
    ];
    let first = pool[rng.range(0, pool.len() as u64) as usize];
    let second = loop {
        let candidate = pool[rng.range(0, pool.len() as u64) as usize];
        if candidate != first {
            break candidate;
        }
    };
    let mut pick = |values: &[u64]| -> Vec<u64> {
        let count = rng.range(0, 3) as usize;
        let mut chosen: Vec<u64> = Vec::new();
        for _ in 0..count {
            let v = values[rng.range(0, values.len() as u64) as usize];
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        chosen
    };
    let entries = pick(&[4, 8, 16, 32]);
    let misses = pick(&[10, 20, 40]);
    let redirects = pick(&[6, 12]);
    GridSweep::over([first, second])
        .btu_entries(entries.iter().map(|&e| e as usize))
        .miss_penalties(misses.iter().copied())
        .redirect_penalties(redirects.iter().copied())
}

#[test]
fn random_grid_frontiers_satisfy_the_dominance_invariants() {
    const SEED: u64 = 0x5eed_f00d;
    let workloads = common::quick_workloads();
    let mut rng = common::Rng::new(SEED);
    let mut ev = Evaluator::new();
    for round in 0..3 {
        let grid = random_grid(&mut rng);
        let context = format!("seed {SEED:#x} round {round}");
        let serial = run(&mut ev, &workloads, &grid, None, 1);
        assert_frontier_invariants(&serial, &context);
        // Thread-count determinism: the whole result — scores, dominance
        // counts, frontier order — is identical under 4 workers.
        let threaded = run(&mut ev, &workloads, &grid, None, 4);
        assert_eq!(
            serial, threaded,
            "{context}: thread count changed the result"
        );
    }
}

#[test]
fn adaptive_search_is_deterministic_across_thread_counts() {
    let workloads = common::quick_workloads();
    let mut ev = Evaluator::new();
    let adaptive = Some(AdaptiveSearch::default());
    let serial = run(&mut ev, &workloads, &standard_grid(), adaptive, 1);
    assert_frontier_invariants(&serial, "adaptive standard grid");
    let threaded = run(&mut ev, &workloads, &standard_grid(), adaptive, 4);
    assert_eq!(serial, threaded);
    assert!(serial.adaptive && serial.rungs.len() == 2);
}
