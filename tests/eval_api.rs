//! Integration tests for the evaluation session API: analysis caching,
//! registry/legacy parity, and JSON round-trips.

mod common;

use cassandra::core::experiments::{self, FIG7_DESIGNS, Q3_VARIANTS};
use cassandra::core::registry::{Fig8Experiment, Q4Experiment, SweepExperiment};
use cassandra::core::security;
use cassandra::kernels::suite;
use cassandra::prelude::*;
use common::quick_workloads;

/// The headline cache property: a full multi-experiment evaluation analyzes
/// each distinct program exactly once, however many designs and experiments
/// consume it.
#[test]
fn full_registry_run_analyzes_each_program_exactly_once() {
    let workloads = quick_workloads();
    let n = workloads.len() as u64;
    let mut session = Evaluator::builder()
        .workloads(workloads)
        .defense_matrix(FIG7_DESIGNS)
        .build();
    let mut registry = ExperimentRegistry::standard();
    registry.register(SweepExperiment);
    let runs = registry.run_all(&mut session).unwrap();
    assert_eq!(runs.len(), 12);

    let stats = session.cache_stats();
    // Session workloads + 10 fig8 synthetics + 16 security gadget builds.
    assert_eq!(
        stats.misses,
        n + 10 + 16,
        "exactly one analysis per program"
    );
    assert_eq!(session.analyzed_programs() as u64, stats.misses);
    // Every experiment after the first re-uses the session workloads'
    // analyses: table1/fig7(4 designs)/fig9(2)/q3(2)/q4(3)/tracegen/sweep.
    assert!(stats.hits > 10 * n, "cache hits {} too low", stats.hits);

    // Running the whole registry again must add zero analyses.
    registry.run_all(&mut session).unwrap();
    assert_eq!(session.cache_stats().misses, stats.misses);
}

/// The registry path must reproduce the legacy free-function drivers
/// bit-for-bit (same structs, same floats) on a small suite.
#[test]
fn registry_outputs_match_legacy_free_functions() {
    let workloads = quick_workloads();
    let mut session = Evaluator::builder().workloads(workloads.clone()).build();
    let mut registry = ExperimentRegistry::standard();
    registry.register(Fig8Experiment { scale: 2 });
    registry.register(Q4Experiment {
        flush_interval: 5_000,
        ..Q4Experiment::default()
    });
    let runs = registry.run_all(&mut session).unwrap();
    let by_name = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing run {name}"))
            .output
            .clone()
    };

    assert_eq!(
        by_name("table1"),
        ExperimentOutput::Table1(experiments::table1(&workloads).unwrap())
    );
    assert_eq!(
        by_name("fig7"),
        ExperimentOutput::Fig7(experiments::figure7(&workloads, &FIG7_DESIGNS).unwrap())
    );
    assert_eq!(
        by_name("fig8"),
        ExperimentOutput::Fig8(experiments::figure8(2).unwrap())
    );
    assert_eq!(
        by_name("fig9"),
        ExperimentOutput::Fig9(experiments::figure9(&workloads).unwrap())
    );
    assert_eq!(
        by_name("q3"),
        ExperimentOutput::Q3(
            experiments::q3_with(&mut Evaluator::new(), &workloads, &Q3_VARIANTS).unwrap()
        )
    );
    assert_eq!(
        by_name("q4"),
        ExperimentOutput::Q4(experiments::q4_btu_flush(&workloads, 5_000).unwrap())
    );
    // The registry's security default enumerates the full policy registry;
    // the stateless driver reproduces it when handed the same design list.
    assert_eq!(
        by_name("security"),
        ExperimentOutput::Security(
            security::security_sweep(&PolicyRegistry::standard().defenses()).unwrap()
        )
    );
    // And the paper's two-design Table 2 is still a plain subset call.
    let table2 = security::security_sweep(&security::SECURITY_SWEEP_DESIGNS).unwrap();
    assert_eq!(table2.cells.len(), 16);
}

/// Every experiment output serializes to JSON and deserializes back to an
/// equal value (timing-carrying outputs round-trip too: durations are
/// exact `{secs, nanos}` pairs and floats use shortest-roundtrip text).
#[test]
fn experiment_outputs_round_trip_through_json() {
    let mut session = Evaluator::builder()
        .workloads(quick_workloads())
        .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
        .build();
    let mut registry = ExperimentRegistry::standard();
    registry.register(SweepExperiment);
    for run in registry.run_all(&mut session).unwrap() {
        let json = report::render_json(&run.output).unwrap();
        let back: ExperimentOutput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, run.output, "JSON round trip of {}", run.name);
    }
}

/// EvalRecords carry everything the figures need, and the sweep honours the
/// configured matrix ordering.
#[test]
fn sweep_records_are_complete_and_ordered() {
    let workloads = quick_workloads();
    let n = workloads.len();
    let mut session = Evaluator::builder()
        .workloads(workloads)
        .designs([
            DesignPoint::from_defense(DefenseMode::UnsafeBaseline),
            DesignPoint::new(
                "Cassandra+flush",
                CpuConfig::golden_cove_like()
                    .with_defense(DefenseMode::Cassandra)
                    .with_btu_flush_interval(5_000),
            ),
        ])
        .build();
    let records = session.sweep().unwrap();
    assert_eq!(records.len(), 2 * n);
    for pair in records.chunks(2) {
        assert_eq!(pair[0].workload, pair[1].workload);
        assert_eq!(pair[0].design, "UnsafeBaseline");
        assert_eq!(pair[1].design, "Cassandra+flush");
        assert_eq!(pair[1].defense, DefenseMode::Cassandra);
        assert_eq!(
            pair[0].stats.committed_instructions, pair[1].stats.committed_instructions,
            "defenses must not change architectural behaviour"
        );
        assert_eq!(pair[1].stats.mispredictions, 0);
    }
}

/// `Evaluator::sweep` output is pinned byte-for-byte (wall-times zeroed)
/// against a committed golden fixture captured before the
/// AnalysisStore/SweepExecutor split, so refactors of the evaluation layer
/// cannot silently change a single record field. Regenerate with
/// `BLESS_GOLDEN=1 cargo test --test eval_api sweep_matches`.
#[test]
fn sweep_matches_committed_golden_records() {
    use std::time::Duration;

    let mut session = Evaluator::builder()
        .workloads([suite::chacha20_workload(64), suite::des_workload(4)])
        .policies(&PolicyRegistry::standard())
        .build();
    let records = session.sweep().unwrap();
    let lines: Vec<String> = records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.timing.analysis = Duration::ZERO;
            r.timing.simulate = Duration::ZERO;
            serde_json::to_string(&r).unwrap()
        })
        .collect();

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/sweep_records.jsonl"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, lines.join("\n") + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden fixture missing; regenerate with BLESS_GOLDEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        lines.len(),
        golden_lines.len(),
        "record count diverged from the golden fixture"
    );
    for (i, (got, want)) in lines.iter().zip(&golden_lines).enumerate() {
        assert_eq!(
            got, *want,
            "record {i} diverged from the golden fixture (wall-times zeroed)"
        );
    }
}

/// The deprecated-path free functions and the session produce identical
/// simulation statistics.
#[test]
fn free_function_shims_match_the_session() {
    let w = suite::poly1305_workload(32);
    let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::CassandraStl);

    let legacy_analysis = analyze_workload(&w).unwrap();
    let legacy = simulate_workload(&w, &legacy_analysis, &cfg).unwrap();

    let mut session = Evaluator::new();
    let outcome = session.simulate_cached(&w, &cfg).unwrap();
    assert_eq!(outcome.stats, legacy.stats);

    let record = session.eval(&w, &DesignPoint::new("stl", cfg)).unwrap();
    assert_eq!(record.stats, legacy.stats);
    assert!(record.timing.analysis_cached, "second use hits the cache");

    // The shim's bundle and the session's cached bundle are semantically
    // identical: same replay-relevant content fingerprint.
    let session_analysis = session.analysis(&w).unwrap();
    assert_eq!(
        legacy_analysis.bundle.fingerprint(),
        session_analysis.bundle.fingerprint(),
        "one-shot and session analyses must replay the same traces"
    );
}
