//! Byte-exact `SimOutcome` pinning across the full policy matrix.
//!
//! The hot-loop optimization work (PR 7: `Copy` instructions, dense memory
//! backing, the flat squash-undo log, the slot-indexed BTU) must change
//! **no observable behavior**: statistics, both access traces and the halt
//! flag of every (workload × policy) cell are pinned byte-for-byte against
//! a golden fixture blessed on the *pre-optimization* simulator. A diff in
//! any serialized field — a cycle count, a single transient address — fails
//! here with the exact cell named.
//!
//! Regenerate (only when a behavioral change is intended and reviewed) with
//! `BLESS_GOLDEN=1 cargo test --test sim_outcome_golden`.

mod common;

use cassandra::prelude::*;
use serde::Serialize;

/// One serialized matrix cell: the workload, the design label and the full
/// simulation outcome (stats + both access traces + the halt flag).
#[derive(Serialize)]
struct GoldenCell {
    workload: String,
    design: String,
    outcome: SimOutcome,
}

/// Every `SimOutcome` of the quick-workload × standard-registry matrix,
/// serialized as one JSON line per cell, must match the committed fixture.
#[test]
fn policy_matrix_outcomes_match_the_blessed_golden_fixture() {
    let workloads = common::quick_workloads();
    let registry = PolicyRegistry::standard();
    assert_eq!(
        registry.len(),
        DefenseMode::ALL.len(),
        "the fixture must cover every registered defense"
    );

    let mut session = Evaluator::new();
    let mut lines: Vec<String> = Vec::new();
    for workload in &workloads {
        for design in registry.designs() {
            let outcome = session
                .simulate_cached(workload, &design.config)
                .unwrap_or_else(|e| panic!("{} under {}: {e:?}", workload.name, design.label));
            let cell = GoldenCell {
                workload: workload.name.clone(),
                design: design.label.clone(),
                outcome,
            };
            lines.push(serde_json::to_string(&cell).expect("serializable outcome"));
        }
    }

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/sim_outcomes.jsonl"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, lines.join("\n") + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden fixture missing; regenerate with BLESS_GOLDEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        lines.len(),
        golden_lines.len(),
        "cell count diverged from the golden fixture"
    );
    for (got, want) in lines.iter().zip(&golden_lines) {
        assert_eq!(
            got, *want,
            "a simulation outcome diverged from the pre-optimization fixture"
        );
    }
}
