//! Heap-allocation budget of the simulator's hot loop.
//!
//! The perf work of PR 7 promises an *allocation-free steady state*: after
//! `Simulator::new` pre-sizes every collection, neither committing an
//! instruction nor squashing a wrong path may touch the allocator. Rather
//! than asserting an absolute allocation count (brittle against incidental
//! setup changes), this test counts allocations with a wrapping global
//! allocator and asserts the count is **independent of how many
//! instructions run**: a run of `2N` instructions must allocate exactly as
//! often as a run of `N`. Any per-instruction or per-squash allocation —
//! including amortized `Vec` regrowth of a collection that was supposed to
//! be pre-sized — makes the longer run allocate more and fails the test.
//!
//! The binary holds exactly one `#[test]` so no concurrent test pollutes
//! the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cassandra::cpu::config::{CpuConfig, DefenseMode};
use cassandra::cpu::pipeline::simulate;
use cassandra::isa::builder::ProgramBuilder;
use cassandra::isa::program::Program;
use cassandra::isa::reg::{A0, A1, A2, A3, SP, ZERO};

/// Counts every allocation (and regrowth) without changing behavior.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// An endless, well-predicted loop: the pure correct-path commit stream
/// (ALU ops, a spill store, a reload) with a backward branch the BPU locks
/// onto almost immediately.
fn straight_loop() -> Program {
    let mut b = ProgramBuilder::new("alloc-probe-straight");
    b.li(A0, 1);
    b.li(A1, 0);
    b.label("loop");
    b.add(A1, A1, A0);
    b.xori(A1, A1, 0x5a);
    b.sd(A1, SP, -8);
    b.ld(A2, SP, -8);
    b.j("loop");
    b.halt();
    b.build().expect("valid probe program")
}

/// An endless loop whose forward branch follows the parity of an LCG: the
/// pattern defeats the pattern-history table, so the run keeps opening
/// wrong-path windows and squashing them — the squash/undo path must be
/// as allocation-free as the commit path.
fn mispredicting_loop() -> Program {
    let mut b = ProgramBuilder::new("alloc-probe-squash");
    b.li(A0, 12345);
    b.li(A3, 0);
    b.label("loop");
    b.muli(A0, A0, 6364136223846793005);
    b.addi(A0, A0, 1442695040888963407);
    b.srli(A1, A0, 33);
    b.andi(A1, A1, 1);
    b.beq(A1, ZERO, "skip");
    // Taken side: memory traffic that a mispredicted skip executes
    // transiently and must undo.
    b.sd(A0, SP, -16);
    b.ld(A2, SP, -16);
    b.addi(A3, A3, 1);
    b.label("skip");
    b.j("loop");
    b.halt();
    b.build().expect("valid probe program")
}

/// Runs `program` for `max_instructions` committed instructions and returns
/// how many heap allocations the whole simulation (constructor + run) made,
/// along with how many wrong-path instructions were squashed.
fn allocs_for(program: &Program, max_instructions: u64) -> (u64, u64) {
    let mut config = CpuConfig::golden_cove_like();
    config.defense = DefenseMode::UnsafeBaseline;
    config.max_instructions = max_instructions;
    let before = ALLOCS.load(Ordering::Relaxed);
    let outcome = simulate(program, config, None).expect("probe program simulates");
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        outcome.stats.committed_instructions, max_instructions,
        "the probe loop must outlast the instruction budget"
    );
    std::hint::black_box(&outcome);
    (after - before, outcome.stats.squashed_instructions)
}

/// The allocation count of a simulation, taken as the minimum over a few
/// identical runs: the simulator itself is deterministic, but the libtest
/// harness thread may allocate concurrently and inflate a single sample.
fn min_allocs_for(program: &Program, max_instructions: u64) -> (u64, u64) {
    (0..5)
        .map(|_| allocs_for(program, max_instructions))
        .min()
        .expect("non-empty sample set")
}

/// Doubling the instruction count must not change the allocation count —
/// neither on the pure commit path nor under sustained mispredict/squash
/// pressure. (`N` stays within the pre-sized access-trace capacity hint,
/// which covers budgets up to `1 << 16`.)
#[test]
fn hot_loop_makes_no_per_instruction_or_per_squash_allocations() {
    for (label, wants_squashes, program) in [
        ("straight loop", false, straight_loop()),
        ("mispredicting loop", true, mispredicting_loop()),
    ] {
        // Warm-up run absorbs one-time lazy initialization.
        allocs_for(&program, 1 << 10);
        let (short, _) = min_allocs_for(&program, 1 << 12);
        let (long, squashed) = min_allocs_for(&program, 1 << 13);
        if wants_squashes {
            assert!(
                squashed > 100,
                "{label}: expected sustained mispredictions, saw only \
                 {squashed} squashed instructions — the probe no longer \
                 exercises the squash path"
            );
        }
        assert_eq!(
            short, long,
            "{label}: doubling the instruction budget changed the allocation \
             count ({short} vs {long}) — something allocates per instruction \
             or per squash"
        );
    }
}
