//! Byte-exact pinning of the frontier experiment's record stream.
//!
//! The registry's `frontier` experiment over the quick workload suite is
//! serialized one JSON line per scored cell and compared byte-for-byte
//! against a blessed fixture: any drift in a slowdown, a leak count, a
//! dominance count or the frontier membership of a cell fails here with the
//! exact cell named. Frontier results carry no wall-clock timing, so the
//! stream is byte-stable across machines and thread counts.
//!
//! Regenerate (only when a scoring change is intended and reviewed) with
//! `BLESS_GOLDEN=1 cargo test --test frontier_golden`.

mod common;

use cassandra::core::registry::ExperimentOutput;
use cassandra::prelude::*;

#[test]
fn frontier_experiment_stream_matches_the_blessed_golden_fixture() {
    let mut session = Evaluator::builder()
        .workloads(common::quick_workloads())
        .build();
    let registry = ExperimentRegistry::standard();
    let run = registry
        .run("frontier", &mut session)
        .expect("frontier experiment")
        .expect("frontier is a standard registry entry");
    let ExperimentOutput::Frontier(result) = &run.output else {
        panic!("frontier produced the wrong output kind");
    };

    let mut lines: Vec<String> = Vec::new();
    for cell in &result.cells {
        lines.push(serde_json::to_string(cell).expect("serializable cell"));
    }
    for point in &result.frontier {
        lines.push(serde_json::to_string(point).expect("serializable point"));
    }

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/frontier_report.jsonl"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, lines.join("\n") + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden fixture missing; regenerate with BLESS_GOLDEN=1");
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(
        lines.len(),
        golden_lines.len(),
        "line count diverged from the golden fixture"
    );
    for (got, want) in lines.iter().zip(&golden_lines) {
        assert_eq!(got, *want, "a frontier record diverged from the fixture");
    }
}
