//! Differential validation of the static analyzer against the simulator.
//!
//! The contract between `cassandra-analysis` and the dynamic stack has a
//! fixed direction: the static pass **over-approximates**. Concretely:
//!
//! * zero false negatives — every leak the dynamic security sweep observes
//!   (under *any* registered defense) must be statically flagged;
//! * a `ct-clean` verdict is a guarantee — secret-differing builds of a
//!   statically clean kernel must produce identical attacker-visible access
//!   traces under **every** defense mode, speculation included;
//! * the static CFG contains every dynamically executed control-flow edge,
//!   and a statically untainted branch never has a secret-dependent outcome
//!   at runtime (property-tested over seeded random programs).

mod common;

use cassandra::analysis::{analyze, Cfg, StaticVerdict};
use cassandra::core::security::{self, ScenarioVerdict};
use cassandra::isa::exec::Executor;
use cassandra::isa::instr::BranchKind;
use cassandra::isa::observe::{BranchOutcome, Observer};
use cassandra::kernels::gadgets;
use cassandra::kernels::kernel::{chacha20, feistel, modexp, poly1305};
use cassandra::kernels::suite;
use cassandra::prelude::*;
use common::{random_taint_program, Rng};
use std::collections::BTreeMap;

// ------------------------------------------------------ static ground truth

/// The paper's workloads get the expected verdicts through the facade: the
/// crypto kernels certify clean, table-based AES is an architectural leak,
/// and every secret-transmitting gadget is a transient transmitter with the
/// finding attributed to its mispredictable branch.
#[test]
fn suite_and_gadget_static_verdicts() {
    for w in suite::full_suite() {
        let report = analyze(&w.kernel.program);
        let expected = if w.name.contains("AES") || w.name.contains("CBC") {
            StaticVerdict::ArchLeak
        } else {
            StaticVerdict::CtClean
        };
        assert_eq!(
            report.verdict(),
            expected,
            "{}: {:#?}",
            w.name,
            report.findings
        );
    }
    for g in gadgets::all_scenarios(0x5a5a) {
        let report = analyze(&g.program);
        if g.gadget == cassandra::kernels::gadgets::LeakGadget::NonCryptoRegister {
            // Leaks only an architecturally declassified constant.
            assert_eq!(report.verdict(), StaticVerdict::CtClean);
        } else {
            assert!(report.is_transient_transmitter(), "{}", report.program_name);
            assert!(
                report
                    .transient_findings()
                    .any(|f| f.branch_pc == Some(g.branch_pc)),
                "{}: finding not attributed to the trigger branch",
                report.program_name
            );
        }
    }
    let listing1 = gadgets::listing1_decrypt(0xdead_beef, 8);
    assert_eq!(
        analyze(&listing1.program).verdict(),
        StaticVerdict::TransientLeak
    );
}

// ----------------------------------------------- zero static false negatives

/// Sweeps every gadget scenario under **all** registered defense modes and
/// checks that each dynamically observed leak is statically flagged, with
/// the offending addresses attached to the failing cell (satellite: the
/// matrix no longer reports bare counts).
#[test]
fn every_dynamic_leak_is_statically_flagged_across_all_defenses() {
    let mut ev = Evaluator::new();
    let matrix = security::security_sweep_with(&mut ev, &DefenseMode::ALL).unwrap();
    assert_eq!(matrix.cells.len(), 8 * DefenseMode::ALL.len());

    let mut leaks = 0;
    for cell in &matrix.cells {
        if cell.verdict.is_protected() {
            continue;
        }
        leaks += 1;
        assert!(
            !cell.verdict.divergent_accesses.is_empty(),
            "{} under {}: a leaking cell must name its divergent addresses",
            cell.scenario,
            cell.design
        );
        // The static analyzer never under-approximates: rebuild the
        // scenario program and demand a leak verdict.
        let g = gadgets::scenario(cell.site, cell.gadget, 0x5a5a);
        let report = analyze(&g.program);
        assert_ne!(
            report.verdict(),
            StaticVerdict::CtClean,
            "dynamic leak of {} under {} has no static finding",
            cell.scenario,
            cell.design
        );
    }
    assert!(leaks > 0, "the unsafe baseline must witness leaks");
}

// ------------------------------------------- ct-clean verdict is a guarantee

/// Secret-differing builds of statically certified kernels: under every
/// defense mode the attacker-visible access traces must be identical (the
/// paper's empty-diff criterion), speculative execution included. AES rides
/// along as the negative control — statically `arch-leak`, and dynamically
/// its S-box accesses diverge even on hardware that blocks every transient
/// channel.
#[test]
fn statically_clean_kernels_never_leak_under_any_defense() {
    let msg = [0x5au8; 32];
    let block = [0x5au8; 64];
    let pairs = [
        (
            "chacha20",
            chacha20::build(&[0u8; 32], 1, &[7u8; 12], &block),
            chacha20::build(&[0xffu8; 32], 1, &[7u8; 12], &block),
        ),
        (
            "feistel",
            feistel::build(0, &[1, 2]),
            feistel::build(u64::MAX, &[1, 2]),
        ),
        (
            "poly1305",
            poly1305::build(&[0u8; 32], &msg),
            poly1305::build(&[0xffu8; 32], &msg),
        ),
        (
            "modexp",
            modexp::build((1 << 61) - 1, 3, &[0x0000], 16),
            modexp::build((1 << 61) - 1, 3, &[0xffff], 16),
        ),
    ];

    let mut ev = Evaluator::new();
    for (name, k0, k1) in &pairs {
        let report = analyze(&k0.program);
        assert!(report.is_ct_clean(), "{name}: {:#?}", report.findings);
        for defense in DefenseMode::ALL {
            let cfg = CpuConfig::golden_cove_like().with_defense(defense);
            let o0 = security::observe_with(&mut ev, &k0.program, &cfg).unwrap();
            let o1 = security::observe_with(&mut ev, &k1.program, &cfg).unwrap();
            let v = ScenarioVerdict::from_observations(*name, &o0, &o1);
            assert!(v.contract_equal, "{name}: not constant-time?");
            assert!(
                v.attacker_trace_equal,
                "{name} under {defense:?}: statically clean kernel leaked at {:x?}",
                v.divergent_accesses
            );
        }
    }

    // Negative control: table AES is statically arch-leak and its dynamic
    // attacker traces diverge on secret-differing keys even under defenses.
    let a0 = cassandra::kernels::kernel::aes128::build(&[0u8; 16], 1, &msg);
    let a1 = cassandra::kernels::kernel::aes128::build(&[0xffu8; 16], 1, &msg);
    assert_eq!(analyze(&a0.program).verdict(), StaticVerdict::ArchLeak);
    for defense in [DefenseMode::UnsafeBaseline, DefenseMode::Cassandra] {
        let cfg = CpuConfig::golden_cove_like().with_defense(defense);
        let o0 = security::observe_with(&mut ev, &a0.program, &cfg).unwrap();
        let o1 = security::observe_with(&mut ev, &a1.program, &cfg).unwrap();
        let v = ScenarioVerdict::from_observations("aes128", &o0, &o1);
        assert!(
            !v.attacker_trace_equal && !v.divergent_accesses.is_empty(),
            "table AES must leak architecturally under {defense:?}"
        );
    }
}

// ----------------------------------------------------------- property tests

/// Records every executed control-flow edge and, per conditional branch,
/// the sequence of taken/not-taken outcomes.
#[derive(Default)]
struct EdgeObserver {
    edges: Vec<(usize, usize)>,
    outcomes: BTreeMap<usize, Vec<bool>>,
}

impl Observer for EdgeObserver {
    fn on_branch(&mut self, o: &BranchOutcome) {
        self.edges.push((o.pc, o.target));
        if o.kind == BranchKind::CondDirect {
            self.outcomes.entry(o.pc).or_default().push(o.taken);
        }
    }
}

fn run_edges(p: &Program) -> EdgeObserver {
    let mut exec = Executor::new(p);
    let mut obs = EdgeObserver::default();
    exec.run_with_observer(1_000_000, &mut obs)
        .expect("generated program halts");
    obs
}

/// Seeded property test over random taint programs: (1) every dynamically
/// executed control-flow edge exists in the static CFG; (2) a branch the
/// analyzer leaves untainted has bit-identical outcome sequences across
/// secret-differing runs — static under-tainting would show up here as a
/// divergence on an "untainted" branch; (3) every branch `trace::genproc`
/// profiles is a CFG node with successors.
#[test]
fn random_programs_respect_the_static_cfg_and_taint_verdicts() {
    let seeds = [1u64, 2, 3, 42, 7777, 0x5eed, 0xdead_beef, 0xfeed_f00d];
    let mut saw_tainted = false;
    let mut saw_untainted = false;

    for seed in seeds {
        // Same rng stream, different secrets: identical code, differing data.
        let p0 = random_taint_program(&mut Rng::new(seed), 0x0123_4567_89ab_cdef);
        let p1 = random_taint_program(&mut Rng::new(seed), u64::MAX);
        assert_eq!(p0.instrs, p1.instrs, "seed {seed}: code must match");

        let cfg = Cfg::build(&p0);
        let report = analyze(&p0);
        let o0 = run_edges(&p0);
        let o1 = run_edges(&p1);

        for (obs, which) in [(&o0, "secret0"), (&o1, "secret1")] {
            for &(from, to) in &obs.edges {
                assert!(
                    cfg.has_edge(from, to),
                    "seed {seed} ({which}): dynamic edge {from}->{to} missing from static CFG"
                );
            }
        }

        // Outcome sequences of statically *untainted* branches must be
        // secret-independent.
        let untainted = |obs: &EdgeObserver| -> BTreeMap<usize, Vec<bool>> {
            obs.outcomes
                .iter()
                .filter(|(pc, _)| !report.branch_is_tainted(**pc))
                .map(|(pc, taken)| (*pc, taken.clone()))
                .collect()
        };
        assert_eq!(
            untainted(&o0),
            untainted(&o1),
            "seed {seed}: a statically untainted branch had a secret-dependent outcome"
        );

        saw_tainted |= !report.tainted_branches.is_empty();
        saw_untainted |= o0.outcomes.keys().any(|pc| !report.branch_is_tainted(*pc));

        // genproc ties in: every branch it profiles is a static CFG node.
        let bundle = cassandra::trace::genproc::generate_traces(&p0, Some(&p1), 1_000_000).unwrap();
        for &pc in bundle.branches.keys() {
            assert!(
                !cfg.successors(pc).is_empty(),
                "seed {seed}: genproc branch {pc} unknown to the static CFG"
            );
        }
    }

    assert!(
        saw_tainted && saw_untainted,
        "generator must exercise both tainted and untainted branches"
    );
}

// -------------------------------------------------------------- golden lint

/// The lint experiment's rows are pinned byte-for-byte against a committed
/// golden fixture (the report is fully deterministic — no wall-times to
/// zero). Regenerate with
/// `BLESS_GOLDEN=1 cargo test --test static_differential lint_report`.
#[test]
fn lint_report_matches_committed_golden() {
    let mut session = Evaluator::builder()
        .workloads([
            suite::chacha20_workload(64),
            suite::des_workload(4),
            suite::aes_ctr_workload(32),
        ])
        .build();
    let run = ExperimentRegistry::standard()
        .run("lint", &mut session)
        .unwrap()
        .expect("lint is a standard experiment");
    let ExperimentOutput::Lint(rows) = &run.output else {
        panic!("lint produced {:?}", run.output);
    };
    assert_eq!(session.cache_stats().misses, 0, "lint must stay static");
    let lines: Vec<String> = rows
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect();

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/lint_report.jsonl"
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, lines.join("\n") + "\n").unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden fixture missing; regenerate with BLESS_GOLDEN=1");
    assert_eq!(
        lines,
        golden.lines().map(str::to_string).collect::<Vec<_>>(),
        "lint rows diverged from the golden fixture"
    );
}
