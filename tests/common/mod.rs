//! The shared differential-test harness.
//!
//! Every integration-test binary (`policy_invariants`, `end_to_end`,
//! `security_scenarios`, `property_tests`, …) compiles this module via
//! `mod common;` instead of carrying its own copy of the program builders,
//! golden-stream capture and policy-matrix runner. The central idea: the
//! **unsafe baseline's committed instruction stream and architectural
//! data-access trace are the golden reference**, and every registered
//! defense policy — present and future — is differentially checked against
//! it. A new policy registered in `PolicyRegistry::standard()` is picked up
//! here automatically; no test edits required.

// Each test binary uses a subset of the harness; the rest would otherwise
// trip `-D warnings` on dead code.
#![allow(dead_code)]

use cassandra::kernels::gadgets::{scenario, BranchSite, GadgetProgram, LeakGadget};
use cassandra::kernels::suite;
use cassandra::prelude::*;

// ------------------------------------------------------- program builders

/// The small workload set shared by the integration tests: one workload per
/// library group plus a hint-heavy table cipher, sized for sub-second runs.
pub fn quick_workloads() -> Vec<Workload> {
    vec![
        suite::chacha20_workload(64),
        suite::sha256_workload(96),
        suite::poly1305_workload(64),
        suite::des_workload(4),
    ]
}

/// A deterministically seeded nested-loop crypto program: `outer` iterations
/// of an inner loop whose trip count varies per builder call. Used by the
/// property tests to generate arbitrarily many distinct multi-target branch
/// traces without proptest.
pub fn nested_loop_program(name: &str, outer: u64, inner: u64) -> Program {
    use cassandra::isa::builder::ProgramBuilder;
    use cassandra::isa::reg::{A0, A1, ZERO};
    let mut b = ProgramBuilder::new(name);
    b.begin_crypto();
    b.li(A0, outer.max(1));
    b.label("outer");
    b.li(A1, inner.max(1));
    b.label("inner");
    b.addi(A1, A1, -1);
    b.bne(A1, ZERO, "inner");
    b.addi(A0, A0, -1);
    b.bne(A0, ZERO, "outer");
    b.end_crypto();
    b.halt();
    b.build().expect("valid generated program")
}

// --------------------------------------------------------- golden streams

/// The golden architectural reference of one workload: the unsafe baseline's
/// committed instruction stream and architectural data-access trace.
pub struct Golden {
    /// Workload name (for assertion messages).
    pub workload: String,
    /// The full baseline outcome.
    pub outcome: SimOutcome,
}

/// Captures the golden committed stream of a workload through the session
/// (the analysis is cached, so capturing goldens never re-runs Algorithm 2).
pub fn capture_golden(ev: &mut Evaluator, workload: &Workload) -> Golden {
    let outcome = ev
        .simulate_cached(workload, &CpuConfig::golden_cove_like())
        .expect("baseline simulation");
    assert!(outcome.halted, "{}: baseline must halt", workload.name);
    Golden {
        workload: workload.name.clone(),
        outcome,
    }
}

/// Asserts that an outcome commits the identical instruction stream and the
/// identical architectural access trace as the golden baseline — defenses
/// change timing, never semantics.
pub fn assert_matches_golden(golden: &Golden, outcome: &SimOutcome, design: &str) {
    assert!(outcome.halted, "{}: {design} did not halt", golden.workload);
    assert_eq!(
        outcome.stats.committed_instructions, golden.outcome.stats.committed_instructions,
        "{}: {design} changed the committed instruction stream",
        golden.workload
    );
    assert_eq!(
        outcome.architectural_accesses, golden.outcome.architectural_accesses,
        "{}: {design} changed the architectural access trace",
        golden.workload
    );
}

// ----------------------------------------------------- policy-matrix runs

/// Runs every design of `registry` over every workload, differentially
/// checking each outcome against the workload's golden stream, and hands
/// `(workload, design, golden, outcome)` to the caller for policy-specific
/// assertions.
pub fn run_policy_matrix(
    ev: &mut Evaluator,
    workloads: &[Workload],
    registry: &PolicyRegistry,
    mut check: impl FnMut(&Workload, &DesignPoint, &Golden, &SimOutcome),
) {
    for w in workloads {
        let golden = capture_golden(ev, w);
        for design in registry.designs() {
            let outcome = ev
                .simulate_cached(w, &design.config)
                .unwrap_or_else(|e| panic!("{}: {} failed: {e:?}", w.name, design.label));
            assert_matches_golden(&golden, &outcome, &design.label);
            check(w, design, &golden, &outcome);
        }
    }
}

/// [`run_policy_matrix`] over the standard registry with no extra checks:
/// the plain sweep-matrix invariant.
pub fn assert_standard_matrix_preserves_goldens(ev: &mut Evaluator, workloads: &[Workload]) {
    run_policy_matrix(ev, workloads, &PolicyRegistry::standard(), |_, _, _, _| {});
}

// --------------------------------------------------------- security sweep

/// Evaluates one gadget scenario under one defense (both secrets, verdict by
/// trace comparison) — shared by the security tests and demos.
pub fn verdict(
    defense: DefenseMode,
    site: BranchSite,
    gadget: LeakGadget,
) -> cassandra::core::security::ScenarioVerdict {
    let cfg = CpuConfig::golden_cove_like().with_defense(defense);
    cassandra::core::security::evaluate_scenario(
        &format!("{site:?}->{gadget:?}"),
        |secret| scenario(site, gadget, secret),
        &cfg,
    )
    .expect("scenario evaluation")
}

/// Builds one gadget scenario program (used by tests that inspect traces
/// directly instead of going through the verdict helper).
pub fn gadget(site: BranchSite, leak: LeakGadget, secret: u64) -> GadgetProgram {
    scenario(site, leak, secret)
}

/// A deterministically random program mixing public bounded loops,
/// secret-dependent branches, calls to a shared helper and loads from both
/// public and secret data — the input space of the static/dynamic
/// differential property tests. Two calls with the same `rng` stream and
/// different `secret` values build programs with **identical code** (labels,
/// branch pcs, loop bounds) differing only in the secret data words, so
/// per-pc dynamic behaviour is directly comparable across the pair.
///
/// Every generated program halts on every input: loop trip counts come from
/// the rng (never the secret), and secret-dependent branches only skip
/// straight-line arithmetic.
pub fn random_taint_program(rng: &mut Rng, secret: u64) -> Program {
    use cassandra::isa::builder::ProgramBuilder;
    use cassandra::isa::reg::{A0, A1, A2, A3, A4, T0, T1, ZERO};
    let mut b = ProgramBuilder::new("random-taint");
    let secret_base = b.alloc_secret_u64s("sec", &[secret, secret ^ 0x1234]);
    let pub_words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let pub_base = b.alloc_u64s("pub", &pub_words);
    let out = b.alloc_zeros("out", 16);

    b.begin_crypto();
    b.li(T0, secret_base);
    b.ld(A0, T0, 0); // A0 = secret (tainted)
    b.li(T1, pub_base);
    b.ld(A1, T1, 0); // A1 = public
    let blocks = rng.range(2, 6);
    for i in 0..blocks {
        match rng.range(0, 4) {
            0 => {
                // Public bounded loop: statically untainted branch.
                let label = format!("loop{i}");
                b.li(A2, rng.range(1, 5));
                b.label(label.clone());
                b.addi(A1, A1, 7);
                b.addi(A2, A2, -1);
                b.bne(A2, ZERO, &label);
            }
            1 => {
                // Secret-dependent branch skipping straight-line code:
                // statically tainted, outcome differs across secrets.
                let label = format!("skip{i}");
                b.andi(A3, A0, 1 << (i % 8));
                b.beq(A3, ZERO, &label);
                b.xori(A1, A1, 0x55);
                b.addi(A1, A1, 1);
                b.label(label);
            }
            2 => {
                // Call/ret pair: exercises return edges in the CFG.
                b.call("helper");
            }
            _ => {
                // Public-indexed load: address derived from untainted data.
                b.andi(A4, A1, 0x18);
                b.add(A4, A4, T1);
                b.ld(A4, A4, 0);
                b.xor(A1, A1, A4);
            }
        }
    }
    // Store the public accumulator; constant target address.
    b.li(A4, out);
    b.sd(A1, A4, 0);
    b.end_crypto();
    b.halt();
    b.func("helper");
    b.muli(A1, A1, 3);
    b.addi(A1, A1, 11);
    b.ret();
    b.build().expect("valid generated program")
}

// ------------------------------------------------- deterministic generator

/// Deterministic xorshift64* PRNG; good enough for test-case generation.
/// Seeded per property so failures are replayable from the printed seed.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}
