//! Property-style tests over the core data structures and invariants:
//! losslessness of every trace representation, BTU replay fidelity, and
//! constant-time invariants of the kernels.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a deterministic xorshift generator: each property is checked
//! over a fixed number of pseudo-random cases. Failures print the seed of the
//! offending case so it can be replayed.

use cassandra::btu::cursor::TraceCursor;
use cassandra::btu::encode::EncodedBranchTrace;
use cassandra::trace::kmers::{compress, KmersConfig};
use cassandra::trace::vanilla::VanillaTrace;

/// Deterministic xorshift64* PRNG; good enough for test-case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A plausible branch-target sequence — loop-like runs of a few distinct
/// targets, as produced by real (constant-time) code. Mirrors the old
/// proptest strategy: 1..40 runs of (target in 0..6, length in 1..20).
fn target_sequence(rng: &mut Rng) -> Vec<usize> {
    let runs = rng.range(1, 40);
    let mut out = Vec::new();
    for _ in 0..runs {
        let target = rng.range(0, 6) as usize * 7 + 1;
        let len = rng.range(1, 20) as usize;
        out.extend(std::iter::repeat_n(target, len));
    }
    out
}

const CASES: u64 = 64;

/// Run-length encoding of raw traces is lossless.
#[test]
fn vanilla_rle_roundtrips() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        assert_eq!(vanilla.expand(), targets, "seed {seed}");
    }
}

/// The k-mers compression of Algorithm 1 is lossless and never produces a
/// longer trace than the vanilla representation.
#[test]
fn kmers_compression_is_lossless() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        assert_eq!(kmers.expand(), vanilla.expand(), "seed {seed}");
        assert!(
            kmers.trace_size() <= vanilla.len().max(1),
            "seed {seed}: compressed trace grew"
        );
    }
}

/// The hardware encoding (pattern elements + trace elements) expands back to
/// exactly the recorded target sequence, and the BTU cursor replays it in
/// order — Cassandra's core correctness property.
#[test]
fn btu_encoding_and_cursor_replay_the_trace() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed);
        let targets = target_sequence(&mut rng);
        let branch_pc = rng.range(0, 512) as usize;
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(branch_pc, &kmers, true);
        assert_eq!(encoded.expand_targets(), targets, "seed {seed}");

        let mut cursor = TraceCursor::new();
        let replay: Vec<usize> = (0..targets.len())
            .map(|_| cursor.next_target(&encoded).expect("trace has elements"))
            .collect();
        assert_eq!(replay, targets, "seed {seed}");
    }
}

/// Pattern-element repetition counts always fit the 8-bit hardware field.
#[test]
fn pattern_repetitions_fit_hardware() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(100, &kmers, true);
        for p in &encoded.patterns {
            assert!(u64::from(p.repetitions) <= 255, "seed {seed}");
        }
    }
}

/// The ChaCha20 kernel executes the same number of instructions for any key —
/// the executable-level constant-time property the paper relies on.
#[test]
fn chacha20_kernel_is_constant_time_in_the_key() {
    use cassandra::kernels::kernel::chacha20;
    let nonce = [5u8; 12];
    let msg = vec![0u8; 64];
    let mut rng = Rng::new(0xC0FFEE);
    let mut baseline = None;
    for _ in 0..8 {
        let key_byte = rng.range(0, 256) as u8;
        let kernel = chacha20::build(&[key_byte; 32], 1, &nonce, &msg);
        let (_, steps) = kernel.run_functional_counted().unwrap();
        match baseline {
            None => baseline = Some(steps),
            Some(expected) => assert_eq!(steps, expected, "key byte {key_byte}"),
        }
    }
}

/// Montgomery-ladder exponentiation in the kernel matches the reference for
/// arbitrary exponents (functional correctness under randomisation).
#[test]
fn modexp_kernel_matches_reference() {
    use cassandra::kernels::kernel::modexp;
    use cassandra::kernels::reference::modexp as reference;
    const P61: u64 = (1 << 61) - 1;
    let mut rng = Rng::new(0xBADC0DE);
    for case in 0..8 {
        let exp = [rng.next_u64(), rng.next_u64()];
        let kernel = modexp::build(P61, 3, &exp, 128);
        let out = kernel.run_functional().unwrap();
        let got = u64::from_le_bytes(out.try_into().unwrap());
        assert_eq!(got, reference::mod_exp(P61, 3, &exp, 128), "case {case}");
    }
}
