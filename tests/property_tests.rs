//! Property-based tests over the core data structures and invariants:
//! losslessness of every trace representation, BTU replay fidelity, and
//! constant-time invariants of the kernels.

use cassandra::btu::cursor::TraceCursor;
use cassandra::btu::encode::EncodedBranchTrace;
use cassandra::trace::kmers::{compress, KmersConfig};
use cassandra::trace::vanilla::VanillaTrace;
use proptest::prelude::*;

/// Strategy: a plausible branch-target sequence — loop-like runs of a few
/// distinct targets, as produced by real (constant-time) code.
fn target_sequences() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec((0usize..6, 1usize..20), 1..40).prop_map(|runs| {
        let mut out = Vec::new();
        for (target, len) in runs {
            out.extend(std::iter::repeat(target * 7 + 1).take(len));
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run-length encoding of raw traces is lossless.
    #[test]
    fn vanilla_rle_roundtrips(targets in target_sequences()) {
        let vanilla = VanillaTrace::from_targets(&targets);
        prop_assert_eq!(vanilla.expand(), targets);
    }

    /// The k-mers compression of Algorithm 1 is lossless and never produces a
    /// longer trace than the vanilla representation.
    #[test]
    fn kmers_compression_is_lossless(targets in target_sequences()) {
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        prop_assert_eq!(kmers.expand(), vanilla.expand());
        prop_assert!(kmers.trace_size() <= vanilla.len().max(1));
    }

    /// The hardware encoding (pattern elements + trace elements) expands back
    /// to exactly the recorded target sequence, and the BTU cursor replays it
    /// in order — Cassandra's core correctness property.
    #[test]
    fn btu_encoding_and_cursor_replay_the_trace(targets in target_sequences(), branch_pc in 0usize..512) {
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(branch_pc, &kmers, true);
        prop_assert_eq!(encoded.expand_targets(), targets.clone());

        let mut cursor = TraceCursor::new();
        let replay: Vec<usize> = (0..targets.len())
            .map(|_| cursor.next_target(&encoded).expect("trace has elements"))
            .collect();
        prop_assert_eq!(replay, targets);
    }

    /// Pattern-element repetition counts always fit the 8-bit hardware field.
    #[test]
    fn pattern_repetitions_fit_hardware(targets in target_sequences()) {
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(100, &kmers, true);
        for p in &encoded.patterns {
            prop_assert!(u64::from(p.repetitions) <= 255);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The ChaCha20 kernel executes the same number of instructions for any
    /// key — the executable-level constant-time property the paper relies on.
    #[test]
    fn chacha20_kernel_is_constant_time_in_the_key(key_byte in 0u8..=255) {
        use cassandra::kernels::kernel::chacha20;
        let nonce = [5u8; 12];
        let msg = vec![0u8; 64];
        let k_a = chacha20::build(&[key_byte; 32], 1, &nonce, &msg);
        let k_b = chacha20::build(&[key_byte.wrapping_add(1); 32], 1, &nonce, &msg);
        let (_, steps_a) = k_a.run_functional_counted().unwrap();
        let (_, steps_b) = k_b.run_functional_counted().unwrap();
        prop_assert_eq!(steps_a, steps_b);
    }

    /// Montgomery-ladder exponentiation in the kernel matches the reference
    /// for arbitrary exponents (functional correctness under randomisation).
    #[test]
    fn modexp_kernel_matches_reference(e0 in any::<u64>(), e1 in any::<u64>()) {
        use cassandra::kernels::kernel::modexp;
        use cassandra::kernels::reference::modexp as reference;
        const P61: u64 = (1 << 61) - 1;
        let exp = [e0, e1];
        let kernel = modexp::build(P61, 3, &exp, 128);
        let out = kernel.run_functional().unwrap();
        let got = u64::from_le_bytes(out.try_into().unwrap());
        prop_assert_eq!(got, reference::mod_exp(P61, 3, &exp, 128));
    }
}
