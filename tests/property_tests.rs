//! Property-style tests over the core data structures and invariants:
//! losslessness of every trace representation, BTU replay fidelity under
//! partition churn, tournament confidence saturation, and constant-time
//! invariants of the kernels.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use the deterministic seeded generator from the shared `common`
//! harness: each property is checked over a fixed number of pseudo-random
//! cases (randomly generated programs included). Failures print the seed of
//! the offending case so it can be replayed.

mod common;

use cassandra::btu::cursor::TraceCursor;
use cassandra::btu::encode::{EncodedBranchTrace, EncodedTraces};
use cassandra::btu::unit::{BranchTraceUnit, BtuConfig};
use cassandra::trace::genproc::generate_traces;
use cassandra::trace::kmers::{compress, KmersConfig};
use cassandra::trace::vanilla::VanillaTrace;
use common::Rng;

/// A plausible branch-target sequence — loop-like runs of a few distinct
/// targets, as produced by real (constant-time) code. Mirrors the old
/// proptest strategy: 1..40 runs of (target in 0..6, length in 1..20).
fn target_sequence(rng: &mut Rng) -> Vec<usize> {
    let runs = rng.range(1, 40);
    let mut out = Vec::new();
    for _ in 0..runs {
        let target = rng.range(0, 6) as usize * 7 + 1;
        let len = rng.range(1, 20) as usize;
        out.extend(std::iter::repeat_n(target, len));
    }
    out
}

const CASES: u64 = 64;

/// Run-length encoding of raw traces is lossless.
#[test]
fn vanilla_rle_roundtrips() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        assert_eq!(vanilla.expand(), targets, "seed {seed}");
    }
}

/// The k-mers compression of Algorithm 1 is lossless and never produces a
/// longer trace than the vanilla representation.
#[test]
fn kmers_compression_is_lossless() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        assert_eq!(kmers.expand(), vanilla.expand(), "seed {seed}");
        assert!(
            kmers.trace_size() <= vanilla.len().max(1),
            "seed {seed}: compressed trace grew"
        );
    }
}

/// The hardware encoding (pattern elements + trace elements) expands back to
/// exactly the recorded target sequence, and the BTU cursor replays it in
/// order — Cassandra's core correctness property.
#[test]
fn btu_encoding_and_cursor_replay_the_trace() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed);
        let targets = target_sequence(&mut rng);
        let branch_pc = rng.range(0, 512) as usize;
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(branch_pc, &kmers, true);
        assert_eq!(encoded.expand_targets(), targets, "seed {seed}");

        let mut cursor = TraceCursor::new();
        let replay: Vec<usize> = (0..targets.len())
            .map(|_| cursor.next_target(&encoded).expect("trace has elements"))
            .collect();
        assert_eq!(replay, targets, "seed {seed}");
    }
}

/// Pattern-element repetition counts always fit the 8-bit hardware field.
#[test]
fn pattern_repetitions_fit_hardware() {
    for seed in 1..=CASES {
        let targets = target_sequence(&mut Rng::new(seed));
        let vanilla = VanillaTrace::from_targets(&targets);
        let kmers = compress(&vanilla, &KmersConfig::default());
        let encoded = EncodedBranchTrace::from_kmers(100, &kmers, true);
        for p in &encoded.patterns {
            assert!(u64::from(p.repetitions) <= 255, "seed {seed}");
        }
    }
}

// ------------------------------------------- generated-program BTU churn

/// A seeded random nested-loop program plus the recorded target sequences of
/// its two multi-target branches (inner at PC 3, outer at PC 5).
fn generated_case(rng: &mut Rng) -> (BranchTraceUnit, Vec<(usize, Vec<usize>)>, BtuConfig) {
    let outer = rng.range(2, 6);
    let inner = rng.range(2, 6);
    let program = common::nested_loop_program("generated", outer, inner);
    let raw = cassandra::trace::collect::collect_raw_traces(&program, 100_000).unwrap();
    let expected: Vec<(usize, Vec<usize>)> =
        raw.iter().map(|(pc, t)| (*pc, t.targets.clone())).collect();
    let bundle = generate_traces(&program, None, 100_000).unwrap();
    let encoded = EncodedTraces::from_bundle(&program, &bundle);
    let config = BtuConfig {
        entries: rng.range(1, 6) as usize,
        miss_penalty: rng.range(1, 30),
        partitions: rng.range(1, 4) as usize,
    };
    (BranchTraceUnit::new(config, encoded), expected, config)
}

/// Partition eviction bounds: whatever sequence of lookups, context
/// switches, reassignments and flushes a generated program drives, no
/// partition ever holds more residents than its way capacity — and the
/// replayed targets still follow each branch's recorded sequence exactly.
#[test]
fn generated_partition_churn_bounds_occupancy_and_keeps_replay_exact() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed);
        let (mut btu, expected, _) = generated_case(&mut rng);
        let mut position: Vec<usize> = vec![0; expected.len()];
        loop {
            // Pick a branch that still has recorded executions left.
            let live: Vec<usize> = (0..expected.len())
                .filter(|&i| position[i] < expected[i].1.len())
                .collect();
            let Some(&choice) = live.get(rng.range(0, live.len().max(1) as u64) as usize) else {
                break;
            };
            // Random context churn between committed executions.
            match rng.range(0, 5) {
                0 => {
                    btu.switch_context(rng.range(0, 4));
                }
                1 => {
                    let idx = rng.range(0, btu.config().partitions as u64) as usize;
                    btu.reassign(rng.range(0, 4), idx);
                }
                2 => btu.flush(),
                _ => {}
            }
            let (pc, targets) = &expected[choice];
            let lookup = btu.fetch_lookup(*pc);
            btu.commit_branch(*pc);
            assert_eq!(
                lookup.next_pc,
                Some(targets[position[choice]]),
                "seed {seed}: branch {pc} execution {}",
                position[choice]
            );
            position[choice] += 1;
            // The eviction invariant, after every single operation.
            for (idx, occupancy) in btu.partition_occupancy().iter().enumerate() {
                assert!(
                    *occupancy <= btu.partition_capacity(idx),
                    "seed {seed}: partition {idx} over capacity"
                );
            }
        }
        let total: usize = expected.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(btu.stats().commits as usize, total, "seed {seed}");
    }
}

/// Reassignment under squash: speculative run-ahead followed by arbitrary
/// partition churn and a squash always resumes the replay at the committed
/// checkpoint — partitioning changes residency (latency), never positions.
#[test]
fn generated_reassignment_under_squash_restores_checkpoints() {
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed);
        let (mut btu, expected, config) = generated_case(&mut rng);
        let (pc, targets) = expected
            .iter()
            .max_by_key(|(_, t)| t.len())
            .expect("has branches");
        let committed = rng.range(0, targets.len() as u64 - 1) as usize;
        for (i, want) in targets.iter().enumerate().take(committed) {
            let lookup = btu.fetch_lookup(*pc);
            btu.commit_branch(*pc);
            assert_eq!(lookup.next_pc, Some(*want), "seed {seed}: warm-up {i}");
        }
        // Speculative run-ahead past the committed point (never committed).
        let ahead = rng.range(1, 4).min((targets.len() - committed) as u64);
        for _ in 0..ahead {
            btu.fetch_lookup(*pc);
        }
        // Arbitrary partition churn while speculation is in flight.
        btu.switch_context(rng.range(1, 4));
        btu.reassign(0, rng.range(0, config.partitions as u64) as usize);
        if rng.range(0, 2) == 0 {
            btu.flush();
        }
        // Squash: the next lookup must replay the committed position.
        btu.squash();
        let lookup = btu.fetch_lookup(*pc);
        assert_eq!(
            lookup.next_pc,
            Some(targets[committed]),
            "seed {seed}: replay must resume at committed execution {committed}"
        );
    }
}

/// Tournament confidence saturation: for any generated program and any
/// threshold, exactly the first `threshold` executions of a crypto branch
/// are speculative (BPU) and every later one is a replayed BTU redirect;
/// the counter saturates at the threshold.
#[test]
fn generated_tournament_confidence_saturates_at_the_threshold() {
    use cassandra::cpu::frontend::{BranchEvent, BranchSource, TournamentSource};
    use cassandra::isa::instr::BranchKind;
    for seed in 1..=CASES {
        let mut rng = Rng::new(seed);
        let outer = rng.range(2, 5);
        let inner = rng.range(2, 5);
        let program = common::nested_loop_program("generated", outer, inner);
        let raw = cassandra::trace::collect::collect_raw_traces(&program, 100_000).unwrap();
        let inner_pc = 3usize;
        let targets: Vec<usize> = raw
            .iter()
            .find(|(pc, _)| **pc == inner_pc)
            .map(|(_, t)| t.targets.clone())
            .unwrap();
        let bundle = generate_traces(&program, None, 100_000).unwrap();
        let encoded = EncodedTraces::from_bundle(&program, &bundle);
        let btu = BranchTraceUnit::new(BtuConfig::default(), encoded);
        let threshold = rng.range(0, targets.len() as u64 + 2) as u32;
        let config = cassandra::cpu::config::CpuConfig::golden_cove_like();
        let mut src = TournamentSource::new(&program, &config, Some(btu), threshold);
        for (i, &target) in targets.iter().enumerate() {
            let event = BranchEvent {
                pc: inner_pc,
                kind: BranchKind::CondDirect,
                taken: target != inner_pc + 1,
                actual_target: target,
                direct_target: Some(2),
                fallthrough: inner_pc + 1,
                is_crypto: true,
            };
            let decision = src.on_branch(&event);
            src.on_commit(&event);
            assert_eq!(
                decision.opens_speculation_window,
                (i as u32) < threshold,
                "seed {seed}: execution {i}, threshold {threshold}"
            );
            assert_eq!(
                src.confidence(inner_pc),
                ((i + 1) as u32).min(threshold),
                "seed {seed}: counter saturates at the threshold"
            );
        }
        assert_eq!(
            src.confidence(inner_pc),
            threshold.min(targets.len() as u32),
            "seed {seed}: saturated at min(threshold, executions)"
        );
    }
}

/// The ChaCha20 kernel executes the same number of instructions for any key —
/// the executable-level constant-time property the paper relies on.
#[test]
fn chacha20_kernel_is_constant_time_in_the_key() {
    use cassandra::kernels::kernel::chacha20;
    let nonce = [5u8; 12];
    let msg = vec![0u8; 64];
    let mut rng = Rng::new(0xC0FFEE);
    let mut baseline = None;
    for _ in 0..8 {
        let key_byte = rng.range(0, 256) as u8;
        let kernel = chacha20::build(&[key_byte; 32], 1, &nonce, &msg);
        let (_, steps) = kernel.run_functional_counted().unwrap();
        match baseline {
            None => baseline = Some(steps),
            Some(expected) => assert_eq!(steps, expected, "key byte {key_byte}"),
        }
    }
}

/// Montgomery-ladder exponentiation in the kernel matches the reference for
/// arbitrary exponents (functional correctness under randomisation).
#[test]
fn modexp_kernel_matches_reference() {
    use cassandra::kernels::kernel::modexp;
    use cassandra::kernels::reference::modexp as reference;
    const P61: u64 = (1 << 61) - 1;
    let mut rng = Rng::new(0xBADC0DE);
    for case in 0..8 {
        let exp = [rng.next_u64(), rng.next_u64()];
        let kernel = modexp::build(P61, 3, &exp, 128);
        let out = kernel.run_functional().unwrap();
        let got = u64::from_le_bytes(out.try_into().unwrap());
        assert_eq!(got, reference::mod_exp(P61, 3, &exp, 128), "case {case}");
    }
}
