//! Cross-crate integration tests: the full analyze → encode → simulate
//! pipeline on real kernels, across all defense designs, differentially
//! checked against the golden baseline stream via the shared harness.

mod common;

use cassandra::kernels::suite;
use cassandra::prelude::*;

/// Every design must preserve architectural behaviour: same committed
/// instruction count, same architectural access trace as the golden
/// baseline. The matrix runner covers the whole standard registry —
/// including `Tournament` and `Cassandra-part` — without listing variants.
#[test]
fn all_designs_preserve_architectural_behaviour() {
    let workloads = [suite::poly1305_workload(64)];
    let mut ev = Evaluator::new();
    common::assert_standard_matrix_preserves_goldens(&mut ev, &workloads);
}

/// Cassandra's headline property on real kernels: zero mispredictions, zero
/// squashes, and all crypto branch redirections served by the BTU or hints.
#[test]
fn cassandra_replays_crypto_branches_without_speculation() {
    let mut ev = Evaluator::new();
    let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
    for workload in common::quick_workloads() {
        let outcome = ev.simulate_cached(&workload, &cfg).unwrap();
        assert_eq!(outcome.stats.mispredictions, 0, "{}", workload.name);
        assert_eq!(outcome.stats.squashed_instructions, 0, "{}", workload.name);
        assert!(
            outcome.stats.btu.single_target_lookups <= outcome.stats.btu.lookups,
            "single-target lookups are a subset of all BTU lookups"
        );
        assert_eq!(
            outcome.stats.btu.stall_lookups, 0,
            "{}: every crypto branch must have a usable hint or trace",
            workload.name
        );
        assert!(
            outcome.stats.committed_crypto_branches > 0,
            "{} must execute crypto branches",
            workload.name
        );
    }
}

/// The baseline speculates: crypto kernels show BPU activity and at least the
/// loop-exit mispredictions that Cassandra avoids.
#[test]
fn baseline_speculates_on_crypto_branches() {
    let workload = suite::sha256_workload(192);
    let mut ev = Evaluator::new();
    let golden = common::capture_golden(&mut ev, &workload);
    assert!(golden.outcome.stats.bpu.pht_lookups > 0);
    assert!(golden.outcome.stats.mispredictions > 0);
}

/// Cassandra must not be slower than the unsafe baseline on the quick suite
/// (the paper reports a small speedup on the full suite).
#[test]
fn cassandra_is_not_slower_than_the_baseline_on_crypto_kernels() {
    let mut ev = Evaluator::new();
    let cass_cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
    for workload in suite::quick_suite() {
        let golden = common::capture_golden(&mut ev, &workload);
        let cassandra = ev.simulate_cached(&workload, &cass_cfg).unwrap();
        common::assert_matches_golden(&golden, &cassandra, "Cassandra");
        assert!(
            cassandra.stats.cycles as f64 <= golden.outcome.stats.cycles as f64 * 1.02,
            "{}: Cassandra {} cycles vs baseline {}",
            workload.name,
            cassandra.stats.cycles,
            golden.outcome.stats.cycles
        );
    }
}

/// The synthetic Figure-8 workloads run end to end under the ProSpeCT
/// combinations and preserve architectural behaviour.
#[test]
fn synthetic_mixes_run_under_prospect_designs() {
    use cassandra::kernels::synthetic::{build_mix, CryptoVariant, MixPoint};
    use cassandra::kernels::workload::{Workload, WorkloadGroup};
    let mix = MixPoint {
        sandbox_pct: 50,
        crypto_pct: 50,
    };
    let mut ev = Evaluator::new();
    for variant in [CryptoVariant::ChaChaLike, CryptoVariant::CurveLike] {
        let kernel = build_mix(variant, mix, 4);
        let workload = Workload::new("mix", WorkloadGroup::Synthetic, kernel);
        let golden = common::capture_golden(&mut ev, &workload);
        for defense in [DefenseMode::Prospect, DefenseMode::CassandraProspect] {
            let cfg = CpuConfig::golden_cove_like().with_defense(defense);
            let outcome = ev.simulate_cached(&workload, &cfg).unwrap();
            common::assert_matches_golden(&golden, &outcome, defense.label());
        }
    }
}
