//! Cross-crate integration tests: the full analyze → encode → simulate
//! pipeline on real kernels, across all defense designs.

use cassandra::kernels::suite;
use cassandra::prelude::*;

/// Every design must preserve architectural behaviour: same committed
/// instruction count, same functional output as the reference executor.
#[test]
fn all_designs_preserve_architectural_behaviour() {
    let workload = suite::poly1305_workload(64);
    let analysis = analyze_workload(&workload).unwrap();
    let base_cfg = CpuConfig::golden_cove_like();
    let baseline = simulate_workload(&workload, &analysis, &base_cfg).unwrap();
    assert!(baseline.halted);
    for defense in [
        DefenseMode::Cassandra,
        DefenseMode::CassandraStl,
        DefenseMode::CassandraLite,
        DefenseMode::Spt,
        DefenseMode::Prospect,
        DefenseMode::CassandraProspect,
    ] {
        let outcome =
            simulate_workload(&workload, &analysis, &base_cfg.with_defense(defense)).unwrap();
        assert!(outcome.halted, "{defense:?} did not finish");
        assert_eq!(
            outcome.stats.committed_instructions, baseline.stats.committed_instructions,
            "{defense:?} changed the committed instruction count"
        );
    }
}

/// Cassandra's headline property on real kernels: zero mispredictions, zero
/// squashes, and all crypto branch redirections served by the BTU or hints.
#[test]
fn cassandra_replays_crypto_branches_without_speculation() {
    for workload in [
        suite::chacha20_workload(128),
        suite::sha256_workload(128),
        suite::des_workload(8),
    ] {
        let analysis = analyze_workload(&workload).unwrap();
        let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
        let outcome = simulate_workload(&workload, &analysis, &cfg).unwrap();
        assert_eq!(outcome.stats.mispredictions, 0, "{}", workload.name);
        assert_eq!(outcome.stats.squashed_instructions, 0, "{}", workload.name);
        assert!(
            outcome.stats.btu.single_target_lookups <= outcome.stats.btu.lookups,
            "single-target lookups are a subset of all BTU lookups"
        );
        assert_eq!(
            outcome.stats.btu.stall_lookups, 0,
            "{}: every crypto branch must have a usable hint or trace",
            workload.name
        );
        assert!(
            outcome.stats.committed_crypto_branches > 0,
            "{} must execute crypto branches",
            workload.name
        );
    }
}

/// The baseline speculates: crypto kernels show BPU activity and at least the
/// loop-exit mispredictions that Cassandra avoids.
#[test]
fn baseline_speculates_on_crypto_branches() {
    let workload = suite::sha256_workload(192);
    let analysis = analyze_workload(&workload).unwrap();
    let outcome = simulate_workload(&workload, &analysis, &CpuConfig::golden_cove_like()).unwrap();
    assert!(outcome.stats.bpu.pht_lookups > 0);
    assert!(outcome.stats.mispredictions > 0);
}

/// Cassandra must not be slower than the unsafe baseline on the quick suite
/// (the paper reports a small speedup on the full suite).
#[test]
fn cassandra_is_not_slower_than_the_baseline_on_crypto_kernels() {
    for workload in suite::quick_suite() {
        let analysis = analyze_workload(&workload).unwrap();
        let base_cfg = CpuConfig::golden_cove_like();
        let baseline = simulate_workload(&workload, &analysis, &base_cfg).unwrap();
        let cassandra = simulate_workload(
            &workload,
            &analysis,
            &base_cfg.with_defense(DefenseMode::Cassandra),
        )
        .unwrap();
        assert!(
            cassandra.stats.cycles as f64 <= baseline.stats.cycles as f64 * 1.02,
            "{}: Cassandra {} cycles vs baseline {}",
            workload.name,
            cassandra.stats.cycles,
            baseline.stats.cycles
        );
    }
}

/// The synthetic Figure-8 workloads run end to end under the ProSpeCT
/// combinations and preserve architectural behaviour.
#[test]
fn synthetic_mixes_run_under_prospect_designs() {
    use cassandra::kernels::synthetic::{build_mix, CryptoVariant, MixPoint};
    use cassandra::kernels::workload::{Workload, WorkloadGroup};
    let mix = MixPoint {
        sandbox_pct: 50,
        crypto_pct: 50,
    };
    for variant in [CryptoVariant::ChaChaLike, CryptoVariant::CurveLike] {
        let kernel = build_mix(variant, mix, 4);
        let workload = Workload::new("mix", WorkloadGroup::Synthetic, kernel);
        let analysis = analyze_workload(&workload).unwrap();
        let base_cfg = CpuConfig::golden_cove_like();
        let base = simulate_workload(&workload, &analysis, &base_cfg).unwrap();
        for defense in [DefenseMode::Prospect, DefenseMode::CassandraProspect] {
            let outcome =
                simulate_workload(&workload, &analysis, &base_cfg.with_defense(defense)).unwrap();
            assert_eq!(
                outcome.stats.committed_instructions,
                base.stats.committed_instructions
            );
        }
    }
}
