//! The successive-halving differential harness: on the quick workload
//! suite, `AdaptiveSearch` must report a frontier **identical** to the
//! exhaustive `FrontierResult` while simulating strictly fewer full-suite
//! cells, and a repeat adaptive run must be served entirely from the
//! session's `AnalysisStore` (zero new cache misses).

mod common;

use cassandra::core::frontier::{frontier_with, standard_grid, AdaptiveSearch};
use cassandra::prelude::*;

#[test]
fn adaptive_frontier_matches_exhaustive_with_fewer_full_suite_cells() {
    let workloads = common::quick_workloads();
    let mut ev = Evaluator::new();
    let cancel = CancelToken::new();

    let exhaustive = frontier_with(&mut ev, &workloads, &standard_grid(), None, &cancel, |_| {})
        .expect("exhaustive run")
        .expect("not cancelled");
    assert_eq!(
        exhaustive.cells_simulated_full, exhaustive.cells_total,
        "the exhaustive search scores every cell on the full suite"
    );

    let adaptive = frontier_with(
        &mut ev,
        &workloads,
        &standard_grid(),
        Some(AdaptiveSearch::default()),
        &cancel,
        |_| {},
    )
    .expect("adaptive run")
    .expect("not cancelled");

    // The headline: identical frontier (labels, defenses, bit-identical
    // slowdowns — the smoke subset is a workload prefix, so survivors'
    // geomeans sum in the same order), strictly fewer full-suite cells.
    assert_eq!(
        adaptive.frontier, exhaustive.frontier,
        "successive halving changed the Pareto frontier"
    );
    let saved = exhaustive
        .cells_simulated_full
        .checked_sub(adaptive.cells_simulated_full)
        .expect("adaptive must not simulate more full-suite cells");
    assert!(
        saved > 0,
        "successive halving saved no full-suite cells ({} vs {})",
        adaptive.cells_simulated_full,
        exhaustive.cells_simulated_full
    );
    assert_eq!(adaptive.rungs.len(), 2, "smoke rung + survivor rung");
    assert!(
        adaptive.rungs[0].cells_kept < adaptive.rungs[0].cells_in,
        "the smoke rung must prune: {:?}",
        adaptive.rungs
    );

    // A repeat adaptive run re-simulates but re-analyzes nothing: pure
    // AnalysisStore cache hits.
    let misses_before = ev.cache_stats().misses;
    let repeat = frontier_with(
        &mut ev,
        &workloads,
        &standard_grid(),
        Some(AdaptiveSearch::default()),
        &cancel,
        |_| {},
    )
    .expect("repeat run")
    .expect("not cancelled");
    assert_eq!(repeat, adaptive, "the repeat run must reproduce the result");
    assert_eq!(
        ev.cache_stats().misses,
        misses_before,
        "the repeat adaptive run must be pure analysis-cache hits"
    );
}
