//! # Cassandra (reproduction)
//!
//! Facade crate for the Cassandra reproduction. Re-exports the public API of the
//! workspace crates so that examples and downstream users only need a single
//! dependency.
//!
//! The paper: *Cassandra: Efficient Enforcement of Sequential Execution for
//! Cryptographic Programs*, ISCA 2025.
//!
//! ## Quickstart: the evaluation session API
//!
//! ```
//! use cassandra::prelude::*;
//!
//! // Build an evaluation session: workloads × designs, with the Algorithm-2
//! // analysis of each program cached and shared across the whole session.
//! let mut session = Evaluator::builder()
//!     .workload(cassandra::kernels::suite::chacha20_workload(64))
//!     .defense_matrix([DefenseMode::UnsafeBaseline, DefenseMode::Cassandra])
//!     .build();
//! let records = session.sweep().expect("sweep");
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.stats.committed_instructions > 0));
//! assert_eq!(session.cache_stats().misses, 1); // analyzed once, simulated twice
//! ```
//!
//! ## Deprecated path: stateless free functions
//!
//! ```
//! use cassandra::prelude::*;
//!
//! let workload = cassandra::kernels::suite::chacha20_workload(64);
//! let bundle = analyze_workload(&workload).expect("trace analysis");
//! let mut cfg = CpuConfig::golden_cove_like();
//! cfg.defense = DefenseMode::Cassandra;
//! let result = simulate_workload(&workload, &bundle, &cfg).expect("simulation");
//! assert!(result.stats.committed_instructions > 0);
//! ```

pub use cassandra_analysis as analysis;
pub use cassandra_btu as btu;
pub use cassandra_core as core;
pub use cassandra_cpu as cpu;
pub use cassandra_isa as isa;
pub use cassandra_kernels as kernels;
pub use cassandra_server as server;
pub use cassandra_trace as trace;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cassandra_analysis::{analyze, StaticReport, StaticVerdict};
    pub use cassandra_core::eval::{
        AnalysisSnapshot, AnalysisStore, CancelToken, DesignPoint, EvalRecord, Evaluator,
        EvaluatorBuilder, SweepExecutor, SweepOutcome,
    };
    pub use cassandra_core::frontier::{
        frontier_with, AdaptiveSearch, FrontierCell, FrontierPoint, FrontierProgress,
        FrontierResult,
    };
    pub use cassandra_core::lint::LintRow;
    pub use cassandra_core::policies::{GridSweep, PolicyRegistry};
    pub use cassandra_core::registry::{Experiment, ExperimentOutput, ExperimentRegistry};
    pub use cassandra_core::report::{self, ReportFormat};
    pub use cassandra_core::{
        analyze_program, analyze_workload, simulate_program, simulate_workload, AnalysisBundle,
    };
    pub use cassandra_cpu::config::{CpuConfig, DefenseMode};
    pub use cassandra_cpu::frontend::{BranchEvent, BranchSource, FetchOutcome, FrontendDecision};
    pub use cassandra_cpu::pipeline::SimOutcome;
    pub use cassandra_cpu::policy::{DefensePolicy, FrontendKind};
    pub use cassandra_isa::program::Program;
    pub use cassandra_kernels::workload::Workload;
}
