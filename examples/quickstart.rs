//! Quickstart: analyze a constant-time kernel and compare the unsafe
//! baseline against a Cassandra-enabled processor.
//!
//! Run with `cargo run --release --example quickstart`.

use cassandra::kernels::suite;
use cassandra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload: BearSSL-style ChaCha20 over 256 bytes.
    let workload = suite::chacha20_workload(256);
    println!("workload: {workload}");
    println!(
        "kernel: {} instructions, {} static crypto branches",
        workload.kernel.program.len(),
        workload.kernel.program.crypto_branches().len()
    );

    // 2. Run the paper's Algorithm 2: collect, compress and encode the
    //    sequential branch traces.
    let analysis = analyze_workload(&workload)?;
    println!(
        "branch analysis: {} branches analyzed ({} single-target, {} with compressed traces)",
        analysis.bundle.analyzed_branches(),
        analysis.bundle.hints.single_target_count(),
        analysis.bundle.hints.multi_target_count(),
    );
    for (pc, data) in &analysis.bundle.branches {
        println!(
            "  branch @{pc}: vanilla {} elements -> k-mers {} elements",
            data.vanilla.len(),
            data.kmers.total_size()
        );
    }

    // 3. Simulate the unsafe baseline and Cassandra.
    let base_cfg = CpuConfig::golden_cove_like();
    let baseline = simulate_workload(&workload, &analysis, &base_cfg)?;
    let cassandra = simulate_workload(
        &workload,
        &analysis,
        &base_cfg.with_defense(DefenseMode::Cassandra),
    )?;

    println!("\n                         baseline      cassandra");
    println!(
        "cycles                 {:>10}    {:>10}",
        baseline.stats.cycles, cassandra.stats.cycles
    );
    println!(
        "IPC                    {:>10.3}    {:>10.3}",
        baseline.stats.ipc(),
        cassandra.stats.ipc()
    );
    println!(
        "branch mispredictions  {:>10}    {:>10}",
        baseline.stats.mispredictions, cassandra.stats.mispredictions
    );
    println!(
        "squashed instructions  {:>10}    {:>10}",
        baseline.stats.squashed_instructions, cassandra.stats.squashed_instructions
    );
    let speedup = (1.0 - cassandra.stats.cycles as f64 / baseline.stats.cycles as f64) * 100.0;
    println!("\nCassandra speedup on this kernel: {speedup:+.2}%");
    Ok(())
}
