//! End-to-end ChaCha20: encrypt a message with the ISA kernel on the
//! simulated processor, check it against the pure-Rust reference, and show
//! the branch-trace compression the kernel's control flow admits.
//!
//! Run with `cargo run --release --example chacha20_end_to_end`.

use cassandra::kernels::kernel::chacha20;
use cassandra::kernels::reference::chacha20 as reference;
use cassandra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
    let nonce = [1u8; 12];
    let message =
        b"Cassandra replays the sequential control flow of constant-time code!...........";
    // Pad to a whole number of 64-byte blocks, as the kernel expects.
    let mut padded = message.to_vec();
    padded.resize(padded.len().div_ceil(64) * 64, 0);

    // Build and functionally execute the kernel.
    let kernel = chacha20::build(&key, 1, &nonce, &padded);
    let ciphertext = kernel.run_functional()?;
    let expected = reference::encrypt(&key, 1, &nonce, &padded);
    assert_eq!(ciphertext, expected, "kernel must match the RFC reference");
    println!("ciphertext (first 32 bytes): {:02x?}", &ciphertext[..32]);

    // Analyze its branches and inspect the compression.
    let analysis = analyze_program(&kernel.program, kernel.step_limit)?;
    println!("\nper-branch trace compression:");
    for (pc, data) in &analysis.bundle.branches {
        println!(
            "  branch @{pc:<4} vanilla {:>5} elements   k-mers {:>3} elements   ({}x)",
            data.vanilla.len(),
            data.kmers.total_size(),
            data.vanilla.len() / data.kmers.total_size().max(1)
        );
    }

    // Run it on the Cassandra processor model and decrypt on the reference
    // side to close the loop.
    let cfg = CpuConfig::golden_cove_like().with_defense(DefenseMode::Cassandra);
    let outcome = simulate_program(&kernel.program, Some(&analysis), &cfg)?;
    println!(
        "\nsimulated on Cassandra: {} cycles, IPC {:.2}, {} crypto branches replayed, 0 mispredictions ({} observed)",
        outcome.stats.cycles,
        outcome.stats.ipc(),
        outcome.stats.committed_crypto_branches,
        outcome.stats.mispredictions
    );
    let decrypted = reference::encrypt(&key, 1, &nonce, &ciphertext);
    assert_eq!(&decrypted[..message.len()], message);
    println!(
        "round-trip decryption OK: {:?}",
        String::from_utf8_lossy(&decrypted[..message.len()])
    );
    Ok(())
}
