//! Spectre demonstration: the transient register-leak gadget of the paper's
//! Figure 5(a) leaks a secret on the unsafe baseline and is blocked by
//! Cassandra.
//!
//! Run with `cargo run --release --example spectre_demo`. Pass defense
//! labels (e.g. `Cassandra-lite Fence`) to compare other designs, or `all`
//! for every modelled defense — labels are parsed with
//! `DefenseMode::from_str`, so nothing here hard-codes the variant list.

use cassandra::core::security::observe;
use cassandra::kernels::gadgets::{scenario, BranchSite, LeakGadget};
use cassandra::prelude::*;

fn transient_trace(defense: DefenseMode, secret: u64) -> Vec<u64> {
    let gadget = scenario(BranchSite::Crypto, LeakGadget::CryptoRegister, secret);
    let cfg = CpuConfig::golden_cove_like().with_defense(defense);
    let obs = observe(&gadget.program, &cfg).expect("simulation succeeds");
    obs.transient_accesses().to_vec()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defenses: Vec<DefenseMode> = if args.iter().any(|a| a == "all") {
        DefenseMode::ALL.to_vec()
    } else if args.is_empty() {
        vec![DefenseMode::UnsafeBaseline, DefenseMode::Cassandra]
    } else {
        args.iter()
            .map(|a| a.parse::<DefenseMode>())
            .collect::<Result<_, _>>()?
    };

    println!("Transient register leak (Figure 5a): the branch is never taken");
    println!("architecturally, but its taken path leaks a secret register.\n");

    for defense in defenses {
        let t0 = transient_trace(defense, 0x0000_0000_0000_0000);
        let t1 = transient_trace(defense, 0xffff_ffff_ffff_ffff);
        println!("--- {} ---", defense.label());
        println!("transient accesses with secret bit 0: {t0:x?}");
        println!("transient accesses with secret bit 1: {t1:x?}");
        if t0 == t1 {
            println!("=> no secret-dependent transient activity: PROTECTED\n");
        } else {
            println!("=> the attacker-visible cache footprint depends on the secret: LEAK\n");
        }
    }
    Ok(())
}
