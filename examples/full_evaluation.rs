//! Regenerates the paper's evaluation tables and figures through the
//! experiment registry.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example full_evaluation -- \
//!     [EXPERIMENT] [--format text|csv|json] [--designs LABEL,LABEL,...]
//! ```
//!
//! `EXPERIMENT` is a registry name (`table1`, `fig7`, `fig8`, `fig9`, `q3`,
//! `q4`, `security`, `tracegen`), `all` (every experiment on the full
//! 21-workload suite — takes a few minutes in release mode), or nothing for
//! a quick subset. All experiments share one evaluation session, so each
//! workload's Algorithm-2 analysis runs exactly once.
//!
//! `--designs` selects the session's sweep matrix by defense label
//! (e.g. `--designs UnsafeBaseline,Fence,Tournament,Cassandra-part`); the
//! labels are parsed with `DefenseMode::from_str`, and the default matrix
//! enumerates the standard policy registry — no variant is hand-listed
//! here, so the tournament and partitioned-BTU design points flow through
//! every driver (fig7, q3, security, sweep) with zero edits to this file.
//! `q4` reports the context-switch cost priced both as whole-BTU flushes
//! and as partition reassignments on the way-partitioned BTU.

use cassandra::core::experiments::quick_workloads;
use cassandra::core::registry::{Fig8Experiment, SweepExperiment};
use cassandra::core::PolicyRegistry;
use cassandra::kernels::suite;
use cassandra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = ReportFormat::Text;
    let mut designs: Option<Vec<DefenseMode>> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--format" {
            format = match iter.next().map(String::as_str) {
                Some("csv") => ReportFormat::Csv,
                Some("json") => ReportFormat::Json,
                Some("text") => ReportFormat::Text,
                Some(other) => {
                    return Err(
                        format!("unknown format `{other}`; expected text, csv or json").into(),
                    )
                }
                None => return Err("--format requires a value (text, csv or json)".into()),
            };
        } else if arg == "--designs" {
            let spec = iter
                .next()
                .ok_or("--designs requires a comma-separated list of defense labels")?;
            designs = Some(
                spec.split(',')
                    .map(|label| label.trim().parse::<DefenseMode>())
                    .collect::<Result<_, _>>()?,
            );
        } else {
            positional.push(arg.clone());
        }
    }
    let experiment = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "quick".to_string());

    let mut registry = ExperimentRegistry::standard();
    registry.register(SweepExperiment);

    match experiment.as_str() {
        "all" => {
            let mut session = full_session(designs.as_deref());
            registry.register(Fig8Experiment { scale: 20 });
            for run in registry.run_all(&mut session)? {
                println!("=== {} ===", run.title);
                println!("{}", report::render(&run.output, format)?);
            }
            print_cache_summary(&session);
        }
        "quick" => {
            let mut session = quick_session(designs.as_deref());
            for run in registry.run_all(&mut session)? {
                println!("=== {} ===", run.title);
                println!("{}", report::render(&run.output, format)?);
            }
            print_cache_summary(&session);
        }
        name => {
            let mut session = full_session(designs.as_deref());
            registry.register(Fig8Experiment { scale: 20 });
            match registry.run(name, &mut session)? {
                Some(run) => {
                    println!("=== {} ===", run.title);
                    println!("{}", report::render(&run.output, format)?);
                    print_cache_summary(&session);
                }
                None => {
                    let mut names = registry.names();
                    names.push("all");
                    return Err(format!(
                        "unknown experiment `{name}`; available: {}",
                        names.join(", ")
                    )
                    .into());
                }
            }
        }
    }
    Ok(())
}

fn session_for(workloads: Vec<Workload>, designs: Option<&[DefenseMode]>) -> Evaluator {
    let builder = Evaluator::builder().workloads(workloads);
    match designs {
        Some(defenses) => builder.defense_matrix(defenses.iter().copied()).build(),
        // Default: every policy in the standard registry.
        None => builder.policies(&PolicyRegistry::standard()).build(),
    }
}

/// The paper-sized session: the 21-workload suite × the selected designs.
fn full_session(designs: Option<&[DefenseMode]>) -> Evaluator {
    session_for(suite::full_suite(), designs)
}

/// A fast subset for demos and smoke runs.
fn quick_session(designs: Option<&[DefenseMode]>) -> Evaluator {
    session_for(quick_workloads(), designs)
}

fn print_cache_summary(session: &Evaluator) {
    let stats = session.cache_stats();
    println!(
        "(analysis cache: {} distinct programs analyzed once, {} cache hits, {} requests)",
        stats.misses,
        stats.hits,
        stats.requests()
    );
}
