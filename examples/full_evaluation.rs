//! Regenerates the paper's evaluation tables and figures.
//!
//! Usage: `cargo run --release --example full_evaluation -- [table1|fig7|fig8|fig9|q3|q4|tracegen|all]`
//!
//! With no argument a quick subset is used; `all` runs every experiment on
//! the full 21-workload suite (takes a few minutes in release mode).

use cassandra::core::experiments::{self, FIG7_DESIGNS};
use cassandra::core::report;
use cassandra::kernels::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "quick".to_string());
    let full = suite::full_suite();
    let quick = experiments::quick_workloads();

    let run_table1 = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Table 1: branch analysis of cryptographic programs ===");
        println!("{}", report::format_table1(&experiments::table1(workloads)?));
        Ok(())
    };
    let run_fig7 = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Figure 7: normalized execution time (crypto benchmarks) ===");
        println!("{}", report::format_fig7(&experiments::figure7(workloads, &FIG7_DESIGNS)?));
        Ok(())
    };
    let run_fig8 = |scale: u32| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Figure 8: synthetic sandbox/crypto mixes (ProSpeCT comparison) ===");
        println!("{}", report::format_fig8(&experiments::figure8(scale)?));
        Ok(())
    };
    let run_fig9 = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Figure 9: power and area ===");
        println!("{}", report::format_fig9(&experiments::figure9(workloads)?));
        Ok(())
    };
    let run_q3 = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Q3: Cassandra-lite vs Cassandra ===");
        println!("{}", report::format_q3(&experiments::q3_cassandra_lite(workloads)?));
        Ok(())
    };
    let run_q4 = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== Q4: periodic BTU flushes (context switches) ===");
        println!("{}", report::format_q4(&experiments::q4_btu_flush(workloads, 50_000)?));
        Ok(())
    };
    let run_tracegen = |workloads: &[cassandra::kernels::Workload]| -> Result<(), Box<dyn std::error::Error>> {
        println!("=== §7.5: trace generation runtime ===");
        println!("{}", report::format_trace_gen(&experiments::trace_generation_timing(workloads)?));
        Ok(())
    };

    match arg.as_str() {
        "table1" => run_table1(&full)?,
        "fig7" => run_fig7(&full)?,
        "fig8" => run_fig8(20)?,
        "fig9" => run_fig9(&full)?,
        "q3" => run_q3(&full)?,
        "q4" => run_q4(&full)?,
        "tracegen" => run_tracegen(&full)?,
        "all" => {
            run_table1(&full)?;
            run_fig7(&full)?;
            run_fig8(20)?;
            run_fig9(&full)?;
            run_q3(&full)?;
            run_q4(&full)?;
            run_tracegen(&full)?;
        }
        _ => {
            println!("(quick subset; pass `all` for the full suite)\n");
            run_table1(&quick)?;
            run_fig7(&quick)?;
            run_fig8(4)?;
            run_fig9(&quick)?;
            run_q3(&quick)?;
            run_q4(&quick)?;
            run_tracegen(&quick)?;
        }
    }
    Ok(())
}
