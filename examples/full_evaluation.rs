//! Regenerates the paper's evaluation tables and figures through the
//! experiment registry, and fronts the long-running evaluation service.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example full_evaluation -- \
//!     [EXPERIMENT] [--format text|csv|json] [--designs LABEL,LABEL,...] [--adaptive]
//! cargo run --release --example full_evaluation -- \
//!     serve [--addr HOST:PORT] [--threads N] [--cache-file PATH] [--smoke]
//! cargo run --release --example full_evaluation -- \
//!     connect [--addr HOST:PORT] [REQUEST-JSON ...]
//! cargo run --release --example full_evaluation -- \
//!     shard-sync --from HOST:PORT --to HOST:PORT
//! ```
//!
//! `EXPERIMENT` is a registry name (`table1`, `fig7`, `fig8`, `fig9`, `q3`,
//! `q4`, `security`, `tracegen`, `lint`, `consolidation`, `frontier`),
//! `all` (every experiment on the full 21-workload suite — takes a few
//! minutes in release mode), or nothing for a quick subset. All experiments
//! share one evaluation session, so each workload's Algorithm-2 analysis
//! runs exactly once. `lint` renders the static
//! constant-time/speculative-leakage verdict table without running a
//! single simulation; `--smoke` with a named experiment swaps in the quick
//! workload subset (CI runs `lint --smoke` and `frontier --smoke`). The
//! same verdicts are served over the wire via the protocol's `Lint` request
//! (`connect '{"Lint":{"workloads":[]}}'`). `frontier` computes the
//! performance × security Pareto frontier of the standard design grid;
//! `--adaptive` switches it from the exhaustive sweep to the
//! successive-halving search (full-suite simulation only for cells
//! surviving the smoke rung).
//!
//! `--designs` selects the session's sweep matrix by defense label
//! (e.g. `--designs UnsafeBaseline,Fence,Tournament,Cassandra-part`); the
//! labels are parsed with `DefenseMode::from_str`, and the default matrix
//! enumerates the standard policy registry — no variant is hand-listed
//! here, so the tournament and partitioned-BTU design points flow through
//! every driver (fig7, q3, security, sweep) with zero edits to this file.
//! `q4` reports the context-switch cost priced both as whole-BTU flushes
//! and as partition reassignments on the way-partitioned BTU.
//!
//! `serve` runs the evaluation service (see `docs/PROTOCOL.md`): one
//! long-lived session whose memoized analyses are shared across every
//! client request, with tagged requests pipelined — even two sweeps on
//! one connection interleave their streams (protocol v3). `--threads`
//! sizes the shared request worker pool; when omitted it is auto-sized
//! from `std::thread::available_parallelism` and the choice is logged at
//! startup. `--cache-file PATH` journals the analysis store: replayed on
//! boot, appended as analyses complete (so a crash keeps the warm state),
//! compacted on a clean client `Shutdown`. `--smoke` instead runs a
//! self-contained concurrent round trip (spawn on an ephemeral port, two
//! overlapping tagged sweeps multiplexed on ONE connection while a second
//! connection pings mid-sweep, a static Lint of the submitted workloads,
//! a `consolidation` Experiment over the wire, a `shard-sync` round trip
//! into a second server process, clean shutdown) — CI uses it. `connect`
//! sends newline-delimited JSON requests (from the command line or stdin)
//! and prints each response line. `shard-sync` copies every analysis
//! shard from the `--from` server into the `--to` server over the wire
//! (`SnapshotShard`/`AbsorbSnapshot`), so a fleet of server processes can
//! split a workload set and then pool their analyses.

use cassandra::core::experiments::quick_workloads;
use cassandra::core::frontier::AdaptiveSearch;
use cassandra::core::registry::{Fig8Experiment, FrontierExperiment, SweepExperiment};
use cassandra::core::PolicyRegistry;
use cassandra::kernels::suite;
use cassandra::prelude::*;
use cassandra::server::{
    default_worker_threads, serve, Client, EvalService, GridSpec, Request, Response, WorkloadSpec,
};

const DEFAULT_ADDR: &str = "127.0.0.1:9417";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = ReportFormat::Text;
    let mut designs: Option<Vec<DefenseMode>> = None;
    let mut addr = DEFAULT_ADDR.to_string();
    let mut threads: Option<usize> = None;
    let mut smoke = false;
    let mut adaptive = false;
    let mut cache_file: Option<String> = None;
    let mut sync_from: Option<String> = None;
    let mut sync_to: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--format" {
            format = match iter.next().map(String::as_str) {
                Some("csv") => ReportFormat::Csv,
                Some("json") => ReportFormat::Json,
                Some("text") => ReportFormat::Text,
                Some(other) => {
                    return Err(
                        format!("unknown format `{other}`; expected text, csv or json").into(),
                    )
                }
                None => return Err("--format requires a value (text, csv or json)".into()),
            };
        } else if arg == "--designs" {
            let spec = iter
                .next()
                .ok_or("--designs requires a comma-separated list of defense labels")?;
            designs = Some(
                spec.split(',')
                    .map(|label| label.trim().parse::<DefenseMode>())
                    .collect::<Result<_, _>>()?,
            );
        } else if arg == "--addr" {
            addr = iter
                .next()
                .ok_or("--addr requires a HOST:PORT value")?
                .clone();
        } else if arg == "--threads" {
            threads = Some(
                iter.next()
                    .ok_or("--threads requires a worker count")?
                    .parse()?,
            );
        } else if arg == "--from" {
            sync_from = Some(
                iter.next()
                    .ok_or("--from requires a HOST:PORT value")?
                    .clone(),
            );
        } else if arg == "--to" {
            sync_to = Some(
                iter.next()
                    .ok_or("--to requires a HOST:PORT value")?
                    .clone(),
            );
        } else if arg == "--smoke" {
            smoke = true;
        } else if arg == "--adaptive" {
            adaptive = true;
        } else if arg == "--cache-file" {
            cache_file = Some(
                iter.next()
                    .ok_or("--cache-file requires a snapshot path")?
                    .clone(),
            );
        } else {
            positional.push(arg.clone());
        }
    }
    let experiment = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "quick".to_string());

    match experiment.as_str() {
        "serve" => return run_server(&addr, threads, smoke, cache_file.as_deref()),
        "connect" => return run_client(&addr, &positional[1..]),
        "shard-sync" => {
            let from = sync_from.ok_or("shard-sync requires --from HOST:PORT")?;
            let to = sync_to.ok_or("shard-sync requires --to HOST:PORT")?;
            return run_shard_sync(&from, &to);
        }
        _ => {}
    }

    let mut registry = ExperimentRegistry::standard();
    registry.register(SweepExperiment);
    if adaptive {
        // Replace the registry's exhaustive frontier entry with the
        // successive-halving search over the same grid.
        registry.register(FrontierExperiment {
            grid: cassandra::core::frontier::standard_grid(),
            adaptive: Some(AdaptiveSearch::default()),
        });
    }

    match experiment.as_str() {
        "all" => {
            let mut session = full_session(designs.as_deref());
            registry.register(Fig8Experiment { scale: 20 });
            for run in registry.run_all(&mut session)? {
                println!("=== {} ===", run.title);
                println!("{}", report::render(&run.output, format)?);
            }
            print_cache_summary(&session);
        }
        "quick" => {
            let mut session = quick_session(designs.as_deref());
            for run in registry.run_all(&mut session)? {
                println!("=== {} ===", run.title);
                println!("{}", report::render(&run.output, format)?);
            }
            print_cache_summary(&session);
        }
        name => {
            // `--smoke` trades the paper-sized suite for the quick subset so
            // CI can exercise a single experiment end-to-end in seconds.
            let mut session = if smoke {
                quick_session(designs.as_deref())
            } else {
                full_session(designs.as_deref())
            };
            registry.register(Fig8Experiment { scale: 20 });
            match registry.run(name, &mut session)? {
                Some(run) => {
                    println!("=== {} ===", run.title);
                    println!("{}", report::render(&run.output, format)?);
                    print_cache_summary(&session);
                }
                None => {
                    let mut names = registry.names();
                    names.push("all");
                    return Err(format!(
                        "unknown experiment `{name}`; available: {}",
                        names.join(", ")
                    )
                    .into());
                }
            }
        }
    }
    Ok(())
}

fn session_for(workloads: Vec<Workload>, designs: Option<&[DefenseMode]>) -> Evaluator {
    let builder = Evaluator::builder().workloads(workloads);
    match designs {
        Some(defenses) => builder.defense_matrix(defenses.iter().copied()).build(),
        // Default: every policy in the standard registry.
        None => builder.policies(&PolicyRegistry::standard()).build(),
    }
}

/// The paper-sized session: the 21-workload suite × the selected designs.
fn full_session(designs: Option<&[DefenseMode]>) -> Evaluator {
    session_for(suite::full_suite(), designs)
}

/// A fast subset for demos and smoke runs.
fn quick_session(designs: Option<&[DefenseMode]>) -> Evaluator {
    session_for(quick_workloads(), designs)
}

fn print_cache_summary(session: &Evaluator) {
    let stats = session.cache_stats();
    println!(
        "(analysis cache: {} distinct programs analyzed once, {} cache hits, {} requests)",
        stats.misses,
        stats.hits,
        stats.requests()
    );
}

// ------------------------------------------------------ evaluation service

/// `serve`: run the evaluation service until a client sends `Shutdown` (or,
/// with `--smoke`, drive one concurrent loopback round trip and exit).
fn run_server(
    addr: &str,
    threads: Option<usize>,
    smoke: bool,
    cache_file: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let bind_addr = if smoke { "127.0.0.1:0" } else { addr };
    // `--threads` bounds concurrent simulations (the shared request pool),
    // not connections; absent, size it from the machine.
    let (threads, sized) = match threads {
        Some(n) => (n, "--threads"),
        None => (default_worker_threads(), "available_parallelism"),
    };
    let mut service = EvalService::new();
    if let Some(path) = cache_file {
        service = service.with_cache_file(path);
        println!(
            "analysis cache: replayed {} analyses from the {path} journal \
             (appended incrementally, compacted on clean Shutdown)",
            service.store().len()
        );
    }
    let shards = service.store().shard_count();
    let handle = serve(bind_addr, service, threads)?;
    println!(
        "cassandra-server listening on {} ({threads} workers via {sized}, \
         {shards} store shards); protocol: docs/PROTOCOL.md",
        handle.addr(),
    );
    if smoke {
        smoke_round_trip(handle.addr())?;
    }
    handle.join();
    println!("server stopped");
    Ok(())
}

/// The CI smoke run: two overlapping id-tagged sweeps multiplexed on ONE
/// connection (protocol v3 pipelining) while a second connection pings
/// mid-sweep — asserting interleaved streams, the session's cache
/// metadata, a static Lint of the submitted workloads, a `shard-sync`
/// round trip into a second server process, and a clean shutdown.
fn smoke_round_trip(addr: std::net::SocketAddr) -> Result<(), Box<dyn std::error::Error>> {
    use std::time::Instant;

    let mut sweeper = Client::connect(addr)?;
    sweeper.request(&Request::Submit {
        spec: WorkloadSpec::Kernel {
            family: "chacha20".to_string(),
            size: 4096,
            name: None,
        },
    })?;

    // Two overlapping tagged requests on the SAME connection: a 2 defenses
    // × 2 thresholds × 3 miss penalties = 12-cell grid (long enough that
    // the probes provably land mid-sweep) plus a short 2-policy sweep.
    // The server must interleave both streams instead of serializing them.
    sweeper.send_tagged(
        "smoke-grid",
        &Request::GridSweep {
            workloads: Vec::new(),
            grid: GridSpec {
                defenses: vec!["Cassandra".to_string(), "Tournament".to_string()],
                tournament_thresholds: vec![2, 8],
                btu_partitions: Vec::new(),
                btu_entries: Vec::new(),
                miss_penalties: vec![10, 20, 40],
                redirect_penalties: Vec::new(),
            },
        },
    )?;
    sweeper.send_tagged(
        "smoke-sweep",
        &Request::Sweep {
            workloads: Vec::new(),
            policies: vec!["UnsafeBaseline".to_string(), "Cassandra".to_string()],
        },
    )?;
    let drain = std::thread::spawn(move || -> std::io::Result<_> {
        let streams = sweeper.collect_multiplexed(&["smoke-grid", "smoke-sweep"])?;
        Ok((streams, Instant::now()))
    });

    // Second connection: short requests must complete while the sweeps
    // stream.
    let mut prober = Client::connect(addr)?;
    let pong = prober.request(&Request::Ping)?;
    if !matches!(pong[0], Response::Pong { .. }) {
        return Err(format!("smoke Ping failed: {pong:?}").into());
    }
    let pong_at = Instant::now();

    let (streams, done_at) = drain.join().expect("smoke drain thread")?;
    let grid_stream = &streams["smoke-grid"];
    let records = grid_stream
        .iter()
        .filter(|r| matches!(r, Response::Record(_)))
        .count();
    let Some(Response::Done(summary)) = grid_stream.last() else {
        return Err(format!("smoke GridSweep failed: {:?}", grid_stream.last()).into());
    };
    println!("{}", summary.report);
    println!(
        "smoke: {} records over {} designs, cache {:?}; ping answered mid-sweep: {}",
        summary.records,
        summary.designs.len(),
        summary.cache,
        pong_at < done_at,
    );
    if summary.records == 0 || records != summary.records {
        return Err("smoke GridSweep streamed no (or miscounted) records".into());
    }
    if pong_at >= done_at {
        return Err("smoke Ping did not complete before the sweeps' Done".into());
    }
    let Some(Response::Done(short_summary)) = streams["smoke-sweep"].last() else {
        return Err(format!(
            "smoke pipelined Sweep failed: {:?}",
            streams["smoke-sweep"].last()
        )
        .into());
    };
    if short_summary.records == 0 {
        return Err("smoke pipelined Sweep streamed no records".into());
    }
    println!(
        "smoke: pipelined second sweep on the same connection streamed {} records",
        short_summary.records
    );

    // Static lint over every submitted workload: pure analysis, no
    // simulation, served from the same shared store.
    let lint = prober.request(&Request::Lint {
        workloads: Vec::new(),
    })?;
    let Some(Response::LintReport { rows, report }) = lint.last() else {
        return Err(format!("smoke Lint failed: {lint:?}").into());
    };
    println!("{report}");
    if rows.is_empty() {
        return Err("smoke Lint returned no rows".into());
    }

    // A registry experiment over the wire: the 4-tenant consolidation mix
    // on a small kernel, sharing the session's analysis store.
    prober.request(&Request::Submit {
        spec: WorkloadSpec::Kernel {
            family: "poly1305".to_string(),
            size: 64,
            name: Some("Poly1305_smoke".to_string()),
        },
    })?;
    let consolidation = prober.request(&Request::Experiment {
        name: "consolidation".to_string(),
        workloads: vec!["Poly1305_smoke".to_string()],
    })?;
    let Some(Response::Experiment { output, report, .. }) = consolidation.last() else {
        return Err(format!("smoke consolidation failed: {consolidation:?}").into());
    };
    println!("{report}");
    let cassandra::core::registry::ExperimentOutput::Consolidation(result) = output else {
        return Err("smoke consolidation returned the wrong output kind".into());
    };
    if result.policies.len() != 3 || result.policies.iter().any(|p| p.tenants.is_empty()) {
        return Err("smoke consolidation covered no tenants".into());
    }

    // The streamed frontier experiment over the wire: successive halving
    // over the standard grid, progress lines first, the Pareto set last.
    let frontier = prober.request(&Request::Experiment {
        name: "frontier".to_string(),
        workloads: vec!["Poly1305_smoke".to_string()],
    })?;
    let progress_lines = frontier
        .iter()
        .filter(|r| matches!(r, Response::Progress { .. }))
        .count();
    let Some(Response::Experiment { output, report, .. }) = frontier.last() else {
        return Err(format!("smoke frontier failed: {:?}", frontier.last()).into());
    };
    println!("{report}");
    let cassandra::core::registry::ExperimentOutput::Frontier(result) = output else {
        return Err("smoke frontier returned the wrong output kind".into());
    };
    if progress_lines == 0 || result.frontier.is_empty() || !result.adaptive {
        return Err("smoke frontier streamed no progress or found no Pareto set".into());
    }
    println!(
        "smoke: frontier streamed {progress_lines} progress lines, {} Pareto points",
        result.frontier.len()
    );

    // Shard-sync round trip: a second, cold server process absorbs every
    // analysis shard from this one over the wire.
    let peer_handle = serve("127.0.0.1:0", EvalService::new(), 2)?;
    let mut peer = Client::connect(peer_handle.addr())?;
    let (transferred, absorbed) = sync_shards(&mut prober, &mut peer)?;
    println!("smoke: shard-sync moved {transferred} analyses ({absorbed} new at the peer)");
    if transferred == 0 || absorbed != transferred {
        return Err("smoke shard-sync absorbed nothing at the cold peer".into());
    }
    peer.request(&Request::Shutdown)?;
    peer_handle.join();

    prober.request(&Request::Shutdown)?;
    Ok(())
}

/// Copies every analysis shard of the `from` server into the `to` server
/// over the wire; returns `(entries transferred, entries new at to)`.
fn sync_shards(
    from: &mut Client,
    to: &mut Client,
) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let mut shard = 0;
    let mut shards = 1;
    let mut transferred = 0usize;
    let mut absorbed_total = 0usize;
    while shard < shards {
        let responses = from.request(&Request::SnapshotShard { shard })?;
        let Some(Response::ShardSnapshot {
            shards: total,
            snapshot,
            ..
        }) = responses.last()
        else {
            return Err(format!("SnapshotShard {shard} failed: {responses:?}").into());
        };
        shards = *total;
        transferred += snapshot.entries.len();
        let responses = to.request(&Request::AbsorbSnapshot {
            snapshot: snapshot.clone(),
        })?;
        let Some(Response::Absorbed { absorbed, .. }) = responses.last() else {
            return Err(format!("AbsorbSnapshot of shard {shard} failed: {responses:?}").into());
        };
        absorbed_total += absorbed;
        shard += 1;
    }
    Ok((transferred, absorbed_total))
}

/// `shard-sync`: pool the analyses of two running servers by copying every
/// shard of `--from` into `--to`.
fn run_shard_sync(from: &str, to: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut from = Client::connect(from)?;
    let mut to = Client::connect(to)?;
    let (transferred, absorbed) = sync_shards(&mut from, &mut to)?;
    println!("shard-sync: {transferred} analyses transferred, {absorbed} new at the target");
    Ok(())
}

/// `connect`: send requests (command-line args, or stdin lines if none) to
/// a running server and print every response line.
fn run_client(addr: &str, requests: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = Client::connect(addr)?;
    let lines: Vec<String> = if requests.is_empty() {
        use std::io::BufRead;
        std::io::stdin().lock().lines().collect::<Result<_, _>>()?
    } else {
        requests.to_vec()
    };
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        for response in client.request_raw(&line)? {
            println!("{}", cassandra::server::protocol::encode(&response));
        }
    }
    Ok(())
}
